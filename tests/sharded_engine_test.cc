// The sharded section of the engine test audit: ShardedEngine must keep
// the exact-per-epoch serving contract of QueryEngine while cutting the
// network into per-cell shards — readers racing the per-shard writer,
// every answer Dijkstra-checked on the full-graph weights of the epoch
// it was served from, and single-cell batches republishing only their
// own shard.
#include "engine/sharded_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <thread>

#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

ShardedEngineOptions SmallShardedOptions(BackendKind backend,
                                         uint32_t shards) {
  ShardedEngineOptions opt;
  opt.backend = backend;
  opt.target_shards = shards;
  opt.num_query_threads = 4;
  opt.max_batch_size = 8;
  return opt;
}

class ShardedBackendTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(ShardedBackendTest, ServesExactAnswersOnInitialEpoch) {
  Graph g = testing_util::SmallRoadNetwork(8, 51);
  Graph ref = g;
  ShardedEngine engine(std::move(g), HierarchyOptions{},
                       SmallShardedOptions(GetParam(), 4));
  EXPECT_EQ(engine.backend(), GetParam());
  EXPECT_GE(engine.num_shards(), 4u);
  Dijkstra dij(ref);
  Rng rng(51);
  for (int i = 0; i < 150; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    ShardedQueryResult r = engine.Submit({s, t}).get();
    ASSERT_EQ(r.distance, dij.Distance(s, t))
        << BackendName(GetParam()) << " s=" << s << " t=" << t;
    EXPECT_EQ(r.epoch, 0u);
    ASSERT_NE(r.snapshot, nullptr);
  }
  // Boundary endpoints exercise the overlay-only and mixed routes.
  const auto& boundary = engine.layout().partition.boundary;
  ASSERT_FALSE(boundary.empty());
  for (size_t i = 0; i < boundary.size(); ++i) {
    Vertex b = boundary[i];
    Vertex t = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    ASSERT_EQ(engine.Submit({b, t}).get().distance, dij.Distance(b, t))
        << BackendName(GetParam()) << " boundary s=" << b << " t=" << t;
    Vertex b2 = boundary[rng.NextBounded(boundary.size())];
    ASSERT_EQ(engine.Submit({b, b2}).get().distance, dij.Distance(b, b2))
        << BackendName(GetParam()) << " boundary pair " << b << "," << b2;
  }
}

TEST_P(ShardedBackendTest, UpdatesPublishEpochsWithExactAnswers) {
  Graph g = testing_util::SmallRoadNetwork(7, 52);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  ShardedEngine engine(std::move(g), HierarchyOptions{},
                       SmallShardedOptions(GetParam(), 4));
  Rng rng(52);
  for (int round = 0; round < 4; ++round) {
    std::vector<WeightUpdate> updates;
    for (int i = 0; i < 3; ++i) {
      updates.push_back(
          WeightUpdate{static_cast<EdgeId>(rng.NextBounded(m)), 0,
                       1 + static_cast<Weight>(rng.NextBounded(400))});
    }
    engine.EnqueueUpdates(updates);
    engine.Flush();
    auto snap = engine.CurrentSnapshot();
    Dijkstra dij(snap->graph);
    for (int i = 0; i < 60; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(n));
      Vertex t = static_cast<Vertex>(rng.NextBounded(n));
      ASSERT_EQ(snap->Query(s, t), dij.Distance(s, t))
          << BackendName(GetParam()) << " round=" << round << " s=" << s
          << " t=" << t;
    }
  }
  EngineStats stats = engine.Stats();
  EXPECT_GE(stats.epochs_published, 1u);
  EXPECT_EQ(stats.num_shards, engine.num_shards());
  EXPECT_EQ(stats.shards.size(), engine.num_shards());
  EXPECT_GE(stats.overlay_republishes, stats.epochs_published);
  // Every effective update was routed to exactly one shard or the
  // overlay; per-shard counters must sum to at most the total.
  uint64_t shard_sum = 0;
  for (const ShardStats& row : stats.shards) {
    shard_sum += row.updates_applied;
  }
  EXPECT_LE(shard_sum, stats.updates_applied);
}

// The headline sharded audit: reader threads racing the writer that
// repairs and republishes individual shards; every answer must be exact
// for the full-network weights of the epoch it was served from.
TEST_P(ShardedBackendTest, ConcurrentReadersMatchDijkstraPerEpoch) {
  Graph g = testing_util::SmallRoadNetwork(7, 53);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  ShardedEngineOptions opt = SmallShardedOptions(GetParam(), 4);
  opt.max_batch_size = 4;
  ShardedEngine engine(std::move(g), HierarchyOptions{}, opt);

  std::atomic<bool> done{false};
  std::thread updater([&engine, m, &done] {
    Rng urng(253);
    for (int i = 0; i < 48; ++i) {
      EdgeId e = static_cast<EdgeId>(urng.NextBounded(m));
      engine.EnqueueUpdate(e, 1 + static_cast<Weight>(urng.NextBounded(300)));
      if (i % 6 == 5) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    done.store(true);
  });

  Rng qrng(254);
  std::vector<std::vector<QueryPair>> waves;
  std::vector<ShardedEngine::Ticket> tickets;
  size_t total = 0;
  while (!done.load() || total < 600) {
    std::vector<QueryPair> wave;
    for (int i = 0; i < 30; ++i) {
      wave.emplace_back(static_cast<Vertex>(qrng.NextBounded(n)),
                        static_cast<Vertex>(qrng.NextBounded(n)));
    }
    tickets.push_back(engine.SubmitBatch(wave));
    total += wave.size();
    waves.push_back(std::move(wave));
    if (total >= 3000) break;  // safety valve
  }
  updater.join();
  engine.Flush();

  // Every ticket was routed from ONE pinned snapshot: audit against
  // Dijkstra on that snapshot's full-graph weights AND against the
  // per-query router on the same snapshot — the batched path (grouped,
  // row-reusing) must be bit-identical to per-query serving.
  std::map<uint64_t, std::shared_ptr<const ShardedSnapshot>> snapshots;
  testing_util::EpochOracle oracle;
  uint64_t mismatches = 0;
  uint64_t batch_vs_query_mismatches = 0;
  for (size_t w = 0; w < tickets.size(); ++w) {
    ShardedEngine::Ticket& ticket = tickets[w];
    ticket.Wait();
    const auto& snap = ticket.snapshot();
    ASSERT_NE(snap, nullptr);
    snapshots.emplace(ticket.epoch(), snap);
    Dijkstra& audit = oracle.For(ticket.epoch(), snap->graph);
    for (size_t i = 0; i < waves[w].size(); ++i) {
      const auto [s, t] = waves[w][i];
      if (ticket.distance(i) != audit.Distance(s, t)) ++mismatches;
      if (ticket.distance(i) != snap->Query(s, t)) {
        ++batch_vs_query_mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << BackendName(GetParam());
  EXPECT_EQ(batch_vs_query_mismatches, 0u) << BackendName(GetParam());

  // Held snapshots still answer for their own epoch after the writer
  // has moved on (per-shard immutability).
  for (auto& [epoch, snap] : snapshots) {
    Rng rng(static_cast<uint64_t>(epoch) + 7000);
    for (int i = 0; i < 20; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(n));
      Vertex t = static_cast<Vertex>(rng.NextBounded(n));
      ASSERT_EQ(snap->Query(s, t), oracle.At(epoch).Distance(s, t))
          << BackendName(GetParam()) << " epoch=" << epoch;
    }
  }

  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_served, total);
  EXPECT_GE(stats.epochs_published, 1u);
  EXPECT_EQ(stats.updates_enqueued, 48u);
  EXPECT_EQ(stats.updates_applied + stats.updates_coalesced, 48u);
  EXPECT_GT(stats.resident_index_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ShardedBackendTest,
    ::testing::Values(BackendKind::kStl, BackendKind::kCh,
                      BackendKind::kH2h, BackendKind::kHc2l),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return std::string(BackendName(info.param));
    });

TEST(ShardedEngineTest, ExhaustiveAllPairsMatchFloydWarshall) {
  Graph g = testing_util::SmallRoadNetwork(5, 54);
  Graph ref = g;
  ShardedEngine engine(std::move(g), HierarchyOptions{},
                       SmallShardedOptions(BackendKind::kStl, 3));
  auto all = FloydWarshallAllPairs(ref);
  auto snap = engine.CurrentSnapshot();
  std::vector<QueryPair> pairs;
  for (Vertex s = 0; s < ref.NumVertices(); ++s) {
    for (Vertex t = 0; t < ref.NumVertices(); ++t) {
      ASSERT_EQ(snap->Query(s, t), all[s][t]) << "s=" << s << " t=" << t;
      pairs.emplace_back(s, t);
    }
  }
  // The same pairs as ONE batch: the grouped, row-reusing batched
  // router covers every routing case here (same-cell, cross-cell,
  // boundary endpoints, s == t) and must reproduce every distance
  // bit-identically.
  ShardedEngine::Ticket ticket = engine.SubmitBatch(pairs);
  ticket.Wait();
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(ticket.distance(i), all[pairs[i].first][pairs[i].second])
        << "batched s=" << pairs[i].first << " t=" << pairs[i].second;
  }
}

TEST(ShardedEngineTest, ChooseShardCountHeuristicShape) {
  // Tiny networks don't shard: the boundary overhead has nothing to
  // amortize against.
  EXPECT_EQ(ChooseShardCount(0, 0.0), 1u);
  EXPECT_EQ(ChooseShardCount(1000, 0.0), 1u);
  // k grows with the network...
  EXPECT_GE(ChooseShardCount(1u << 16, 0.0), 2u);
  EXPECT_GE(ChooseShardCount(1u << 20, 0.0),
            ChooseShardCount(1u << 16, 0.0));
  // ...but is capped, and a heavy update feed pushes it back down
  // (every effective epoch rebuilds the overlay).
  EXPECT_LE(ChooseShardCount(UINT32_MAX, 0.0), 64u);
  EXPECT_LE(ChooseShardCount(1u << 20, 10000.0),
            ChooseShardCount(1u << 20, 0.0));
  EXPECT_GE(ChooseShardCount(1u << 20, 1e12), 1u);
}

TEST(ShardedEngineTest, AutoShardCountPicksKAndServesExactly) {
  Graph g = testing_util::SmallRoadNetwork(8, 59);
  Graph ref = g;
  ShardedEngineOptions opt = SmallShardedOptions(BackendKind::kStl, 0);
  opt.expected_update_rate = 20.0;
  ShardedEngine engine(std::move(g), HierarchyOptions{}, opt);
  // The engine picked k itself (64 vertices -> a single shard under the
  // heuristic) and still serves exact answers.
  EXPECT_GE(engine.num_shards(),
            ChooseShardCount(ref.NumVertices(), opt.expected_update_rate));
  Dijkstra dij(ref);
  Rng rng(59);
  for (int i = 0; i < 80; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(ref.NumVertices()));
    ASSERT_EQ(engine.Submit({s, t}).get().distance, dij.Distance(s, t));
  }
}

TEST(ShardedEngineTest, CompletionQueueDeliversExactlyOnceUnderRaces) {
  Graph g = testing_util::SmallRoadNetwork(7, 67);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  ShardedEngine engine(std::move(g), HierarchyOptions{},
                       SmallShardedOptions(BackendKind::kStl, 4));
  CompletionQueue cq;
  constexpr size_t kQueries = 900;
  std::thread updater([&engine, m] {
    Rng urng(671);
    for (int i = 0; i < 40; ++i) {
      engine.EnqueueUpdate(static_cast<EdgeId>(urng.NextBounded(m)),
                           1 + static_cast<Weight>(urng.NextBounded(300)));
      if (i % 5 == 4) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  Rng rng(672);
  for (size_t i = 0; i < kQueries; ++i) {
    engine.SubmitTagged({static_cast<Vertex>(rng.NextBounded(n)),
                         static_cast<Vertex>(rng.NextBounded(n))},
                        i, &cq);
  }
  std::vector<bool> seen(kQueries, false);
  size_t received = 0;
  Completion buf[64];
  while (received < kQueries) {
    const size_t got = cq.WaitPoll(buf, 64);
    for (size_t i = 0; i < got; ++i) {
      ASSERT_LT(buf[i].tag, kQueries);
      ASSERT_FALSE(seen[buf[i].tag]);
      seen[buf[i].tag] = true;
    }
    received += got;
  }
  updater.join();
  EXPECT_EQ(cq.Poll(buf, 64), 0u);
}

TEST(ShardedEngineTest, ResultCacheKeepsShardedAnswersExactAcrossEpochs) {
  Graph g = testing_util::SmallRoadNetwork(7, 68);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  ShardedEngineOptions opt = SmallShardedOptions(BackendKind::kStl, 4);
  opt.result_cache_entries = 1 << 12;
  ShardedEngine engine(std::move(g), HierarchyOptions{}, opt);
  Rng rng(68);
  std::vector<QueryPair> queries;
  for (int i = 0; i < 60; ++i) {
    queries.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                         static_cast<Vertex>(rng.NextBounded(n)));
  }
  ShardedEngine::Ticket first = engine.SubmitBatch(queries);
  first.Wait();
  ShardedEngine::Ticket repeat = engine.SubmitBatch(queries);
  repeat.Wait();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(first.distance(i), repeat.distance(i));
  }
  EXPECT_GT(engine.Stats().result_cache_hits, 0u);
  // New epoch -> stale entries stop matching; answers follow the new
  // weights exactly.
  for (int i = 0; i < 10; ++i) {
    engine.EnqueueUpdate(static_cast<EdgeId>(rng.NextBounded(m)),
                         1 + static_cast<Weight>(rng.NextBounded(400)));
  }
  engine.Flush();
  ShardedEngine::Ticket after = engine.SubmitBatch(queries);
  after.Wait();
  Dijkstra dij(after.snapshot()->graph);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(after.distance(i),
              dij.Distance(queries[i].first, queries[i].second));
  }
}

// The update-locality acceptance check: a batch whose edges all live in
// one cell republishes that shard's epoch and the overlay — every other
// shard's ShardServing pointer in the next snapshot is the same object.
TEST(ShardedEngineTest, SingleCellBatchRepublishesOnlyThatShard) {
  Graph g = testing_util::SmallRoadNetwork(8, 55);
  ShardedEngine engine(std::move(g), HierarchyOptions{},
                       SmallShardedOptions(BackendKind::kStl, 4));
  const ShardLayout& lay = engine.layout();
  ASSERT_GE(lay.num_shards(), 2u);

  // Pick the shard owning the most edges and a few of its edges.
  uint32_t target = 0;
  for (uint32_t c = 1; c < lay.num_shards(); ++c) {
    if (lay.shards[c].edge_to_global.size() >
        lay.shards[target].edge_to_global.size()) {
      target = c;
    }
  }
  ASSERT_GE(lay.shards[target].edge_to_global.size(), 3u);

  auto before = engine.CurrentSnapshot();
  std::vector<WeightUpdate> updates;
  Rng rng(55);
  for (int i = 0; i < 3; ++i) {
    const EdgeId e = lay.shards[target].edge_to_global[i];
    updates.push_back(WeightUpdate{
        e, 0, before->graph.EdgeWeight(e) + 100 +
                  static_cast<Weight>(rng.NextBounded(100))});
  }
  engine.EnqueueUpdates(updates);
  engine.Flush();
  auto after = engine.CurrentSnapshot();

  ASSERT_GT(after->epoch, before->epoch);
  EXPECT_NE(after->overlay.get(), before->overlay.get());
  for (uint32_t c = 0; c < lay.num_shards(); ++c) {
    if (c == target) {
      EXPECT_NE(after->shards[c].get(), before->shards[c].get());
      EXPECT_EQ(after->shards[c]->shard_epoch,
                before->shards[c]->shard_epoch + 1);
    } else {
      // Pointer-shared: the clean shard was not republished.
      EXPECT_EQ(after->shards[c].get(), before->shards[c].get())
          << "shard " << c << " republished by a foreign batch";
    }
  }

  // The stats rows agree with the snapshot lineage.
  EngineStats stats = engine.Stats();
  ASSERT_EQ(stats.shards.size(), lay.num_shards());
  EXPECT_EQ(stats.shards[target].updates_applied, 3u);
  EXPECT_EQ(stats.shards[target].shard_epoch, 1u);
  for (uint32_t c = 0; c < lay.num_shards(); ++c) {
    if (c != target) {
      EXPECT_EQ(stats.shards[c].shard_epoch, 0u);
      EXPECT_EQ(stats.shards[c].updates_applied, 0u);
    }
  }

  // And the answers on the new epoch are still exact.
  Dijkstra dij(after->graph);
  const uint32_t n = after->graph.NumVertices();
  for (int i = 0; i < 80; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ASSERT_EQ(after->Query(s, t), dij.Distance(s, t));
  }
}

TEST(ShardedEngineTest, BoundaryEdgeUpdateKeepsEveryShardClean) {
  // An S–S edge belongs to the overlay: updating it must republish no
  // shard at all, only the overlay table.
  Graph g = testing_util::SmallRoadNetwork(8, 56);
  ShardedEngine engine(std::move(g), HierarchyOptions{},
                       SmallShardedOptions(BackendKind::kStl, 4));
  const ShardLayout& lay = engine.layout();
  if (lay.direct_edges.empty()) {
    GTEST_SKIP() << "partition produced no S-S edges";
  }
  const EdgeId e = lay.direct_edges[0].global_edge;
  auto before = engine.CurrentSnapshot();
  engine.EnqueueUpdate(e, before->graph.EdgeWeight(e) + 50);
  engine.Flush();
  auto after = engine.CurrentSnapshot();
  ASSERT_GT(after->epoch, before->epoch);
  EXPECT_NE(after->overlay.get(), before->overlay.get());
  for (uint32_t c = 0; c < lay.num_shards(); ++c) {
    EXPECT_EQ(after->shards[c].get(), before->shards[c].get());
  }
  Dijkstra dij(after->graph);
  Rng rng(56);
  const uint32_t n = after->graph.NumVertices();
  for (int i = 0; i < 80; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ASSERT_EQ(after->Query(s, t), dij.Distance(s, t));
  }
}

TEST(ShardedEngineTest, DisconnectedGraphRoutesToInfinity) {
  Graph g = testing_util::TwoComponentGraph();
  Graph ref = g;
  ShardedEngine engine(std::move(g), HierarchyOptions{},
                       SmallShardedOptions(BackendKind::kStl, 2));
  auto all = FloydWarshallAllPairs(ref);
  auto snap = engine.CurrentSnapshot();
  for (Vertex s = 0; s < ref.NumVertices(); ++s) {
    for (Vertex t = 0; t < ref.NumVertices(); ++t) {
      ASSERT_EQ(snap->Query(s, t), all[s][t]) << "s=" << s << " t=" << t;
    }
  }
  EXPECT_EQ(snap->Query(0, 4), kInfDistance);
}

TEST(ShardedEngineTest, SingleShardDegeneratesToFlatServing) {
  Graph g = testing_util::SmallRoadNetwork(6, 57);
  Graph ref = g;
  ShardedEngine engine(std::move(g), HierarchyOptions{},
                       SmallShardedOptions(BackendKind::kStl, 1));
  EXPECT_EQ(engine.num_shards(), 1u);
  EXPECT_EQ(engine.layout().num_boundary(), 0u);
  Rng rng(57);
  const uint32_t m = ref.NumEdges();
  for (int i = 0; i < 10; ++i) {
    engine.EnqueueUpdate(static_cast<EdgeId>(rng.NextBounded(m)),
                         1 + static_cast<Weight>(rng.NextBounded(300)));
  }
  engine.Flush();
  auto snap = engine.CurrentSnapshot();
  Dijkstra dij(snap->graph);
  const uint32_t n = snap->graph.NumVertices();
  for (int i = 0; i < 80; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    ASSERT_EQ(snap->Query(s, t), dij.Distance(s, t));
  }
}

TEST(ShardedEngineTest, DestructorDrainsInFlightWork) {
  Graph g = testing_util::SmallRoadNetwork(6, 58);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  std::vector<std::future<ShardedQueryResult>> futures;
  {
    ShardedEngine engine(std::move(g), HierarchyOptions{},
                         SmallShardedOptions(BackendKind::kStl, 4));
    Rng rng(58);
    for (int i = 0; i < 50; ++i) {
      futures.push_back(engine.Submit(
          {static_cast<Vertex>(rng.NextBounded(n)),
           static_cast<Vertex>(rng.NextBounded(n))}));
    }
    for (int i = 0; i < 10; ++i) {
      engine.EnqueueUpdate(static_cast<EdgeId>(rng.NextBounded(m)),
                           1 + static_cast<Weight>(rng.NextBounded(100)));
    }
    // Engine destroyed here with queries and updates still in flight.
  }
  for (auto& f : futures) {
    ShardedQueryResult r = f.get();  // must not hang or throw
    EXPECT_NE(r.snapshot, nullptr);
  }
}

}  // namespace
}  // namespace stl
