// Concurrent query-serving engine, generic over DistanceIndex backends
// (STL, CH, H2H, HC2L — see index/distance_index.h).
//
// Architecture (the serving/maintenance split of Section 1's "dynamic
// road network" setting, engineered for concurrency):
//
//   readers (ThreadPool)              single writer thread
//   ─────────────────────             ─────────────────────────────
//   load current snapshot  ◄───────┐  accumulate EnqueueUpdate()s
//   answer from its view           │  coalesce into a distinct-edge
//   (pure const reads, never       │  batch, apply it to the master
//    blocked by maintenance)       │  backend (incremental repair, or a
//                                  │  full rebuild for static backends),
//                                  └─ publish a new EngineSnapshot
//
// Epoch-versioned snapshots: every published EngineSnapshot is
// immutable. The per-epoch graph is always shared structurally (weights
// live in copy-on-write chunks, graph/graph.h). The index side is
// backend-shaped: STL shares the stable hierarchy across all epochs
// (the paper's central property — weight updates never change it) and
// label pages copy-on-write, so publishing an epoch copies page
// pointers, not entries — O(touched pages), the in-memory mirror of the
// paper's bounded blast radius. CH and H2H mutate their structures in
// place, so each of their epochs is a deep copy of the weight-carrying
// state; HC2L rebuilds on update and publishes the fresh immutable
// index by pointer share. Publication is one atomic pointer swap
// (engine/atomic_shared_ptr.h); a query holds its snapshot alive via
// shared_ptr for exactly as long as it runs, so the writer never waits
// for readers and readers never observe a half-applied batch. (EngineOptions::flat_publish
// restores STL's deep-copy-per-epoch behaviour as a benchmark
// baseline.)
//
// Consistency contract (all backends): a query submitted at time t is
// answered from some epoch published at or after the epoch current at
// t; the answer is exact for that epoch's weights (verified against
// Dijkstra per backend in tests/engine_test.cc and
// bench_backend_shootout).
#ifndef STL_ENGINE_QUERY_ENGINE_H_
#define STL_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "engine/atomic_shared_ptr.h"
#include "engine/latency_histogram.h"
#include "engine/thread_pool.h"
#include "engine/update_queue.h"
#include "graph/updates.h"
#include "index/distance_index.h"
#include "util/timer.h"
#include "workload/query_workload.h"

namespace stl {

/// One immutable published version of the serving state: the graph
/// weights as of this epoch (chunk-shared copy-on-write with
/// neighbouring epochs) plus the backend's index view.
struct EngineSnapshot {
  /// Epoch id (0 = the initial publish; bumps per effective batch).
  uint64_t epoch = 0;
  /// Graph weights as of this epoch (chunk-shared with neighbours).
  Graph graph;
  /// The backend's immutable query surface for this epoch.
  std::shared_ptr<const IndexView> view;
  /// Label pages detached by the producing maintenance batch (the CoW
  /// work that isolated this epoch). Zero for epoch 0 and for backends
  /// without CoW snapshots.
  uint64_t label_pages_cloned = 0;
  /// Total bytes cloned to isolate this epoch (label pages + graph
  /// weight chunks); zero under the same conditions as above.
  uint64_t cow_bytes_cloned = 0;

  /// Exact distance under this epoch's weights; kInfDistance when
  /// unreachable.
  Weight Query(Vertex s, Vertex t) const { return view->Query(s, t); }
  /// Empty when t is unreachable — or when the backend does not support
  /// path queries (BackendCapabilities::path_queries).
  std::vector<Vertex> QueryShortestPath(Vertex s, Vertex t) const {
    return view->QueryShortestPath(graph, s, t);
  }

  /// STL-backend label introspection (CoW audits, publish benches);
  /// null on every other backend.
  const Labelling* StlLabels() const { return view->StlLabels(); }
  /// STL-backend hierarchy introspection; null on other backends.
  const TreeHierarchy* StlHierarchy() const { return view->StlHierarchy(); }
};

/// Answer to one submitted query.
struct QueryResult {
  /// Exact distance for the serving snapshot's weights.
  Weight distance = kInfDistance;
  /// Epoch of the serving snapshot.
  uint64_t epoch = 0;
  /// Submit-to-completion latency (queue wait included).
  double latency_micros = 0;
  /// The snapshot the query was served from; lets callers audit the
  /// answer against the exact weights of that epoch.
  std::shared_ptr<const EngineSnapshot> snapshot;
};

/// How the writer picks the STL maintenance algorithm per batch (other
/// backends use their own single maintenance scheme and ignore this).
enum class StrategyMode {
  kAlwaysParetoSearch,  ///< STL-P for every batch.
  kAlwaysLabelSearch,   ///< STL-L for every batch.
  /// Per-batch choice: Label Search amortizes its per-ancestor searches
  /// over large batches (Table 3); Pareto Search wins on small ones.
  kAuto,
};

/// The per-batch STL maintenance choice for `mode` on a batch of
/// `batch_size` effective updates (`auto_threshold` only matters for
/// StrategyMode::kAuto). Shared by both serving engines.
inline MaintenanceStrategy ChooseStrategy(StrategyMode mode,
                                          size_t auto_threshold,
                                          size_t batch_size) {
  switch (mode) {
    case StrategyMode::kAlwaysParetoSearch:
      return MaintenanceStrategy::kParetoSearch;
    case StrategyMode::kAlwaysLabelSearch:
      return MaintenanceStrategy::kLabelSearch;
    case StrategyMode::kAuto:
      break;
  }
  return batch_size >= auto_threshold
             ? MaintenanceStrategy::kLabelSearch
             : MaintenanceStrategy::kParetoSearch;
}

/// Construction options for the flat (single-index) serving engine.
struct EngineOptions {
  /// Which index family serves this engine (index/distance_index.h).
  BackendKind backend = BackendKind::kStl;
  /// Reader threads.
  int num_query_threads = 4;
  /// Updates taken from the pending queue per epoch (larger batches mean
  /// fewer snapshot publishes but staler reads).
  size_t max_batch_size = 128;
  /// How the writer picks the STL maintenance algorithm per batch.
  StrategyMode strategy = StrategyMode::kAuto;
  /// kAuto: batches with at least this many effective updates use Label
  /// Search.
  size_t auto_label_search_threshold = 16;
  /// Benchmark baseline: publish every epoch as a full deep copy of the
  /// graph weights and labels (the pre-CoW behaviour) instead of a
  /// structural share. Keep false outside bench_snapshot_publish; only
  /// meaningful for backends with CoW snapshots (STL).
  bool flat_publish = false;
};

/// Per-shard serving counters, reported by the sharded engine
/// (engine/sharded_engine.h). Always empty for the flat QueryEngine.
struct ShardStats {
  /// Cell id (index into the engine's shard layout).
  uint32_t shard = 0;
  /// Vertices owned by the cell (|C_i|).
  uint32_t cell_vertices = 0;
  /// Boundary vertices adjacent to the cell (|S_i|).
  uint32_t boundary_vertices = 0;
  /// Edges owned by the shard's subgraph.
  uint32_t subgraph_edges = 0;
  /// This shard's own epoch counter: bumps only when an update batch
  /// dirtied the shard (0 = still serving its initial publish).
  uint64_t shard_epoch = 0;
  /// Effective updates routed to this shard so far.
  uint64_t updates_applied = 0;
  /// Serving-view bytes unique to this shard (shared blocks counted
  /// once across the whole engine).
  uint64_t resident_bytes = 0;
};

/// Point-in-time engine counters and latency summary.
struct EngineStats {
  /// The index family serving the engine.
  BackendKind backend = BackendKind::kStl;
  uint64_t queries_served = 0;     ///< Queries answered so far.
  uint64_t updates_enqueued = 0;   ///< Updates ever enqueued.
  uint64_t updates_applied = 0;    ///< Effective updates (after coalescing).
  uint64_t updates_coalesced = 0;  ///< Duplicates / no-ops dropped.
  uint64_t epochs_published = 0;   ///< Snapshots published after epoch 0.
  uint64_t batches_pareto = 0;       ///< STL-P batches.
  uint64_t batches_label = 0;        ///< STL-L batches.
  uint64_t batches_incremental = 0;  ///< DCH / IncH2H batches.
  uint64_t batches_rebuild = 0;      ///< Static-backend full rebuilds.
  // Copy-on-write publish economics. cow_bytes_cloned counts bytes of
  // label pages + graph weight chunks detached by maintenance (the true
  // per-epoch copy cost under structural sharing);
  // publish_bytes_deep_copied counts bytes copied by deep-copy publishes
  // (flat_publish baseline, and every CH/H2H epoch).
  uint64_t label_pages_cloned = 0;   ///< CoW label pages detached.
  uint64_t graph_chunks_cloned = 0;  ///< CoW graph weight chunks detached.
  uint64_t cow_bytes_cloned = 0;     ///< Bytes of the above clones.
  uint64_t publish_bytes_deep_copied = 0;  ///< Deep-copy publish bytes.
  double publish_total_micros = 0;  ///< Time inside snapshot publication.
  /// Actual resident bytes of the serving state (current snapshot's view
  /// + graph + any state shared with it), with every shared physical
  /// page/chunk counted exactly once (Table-4-style honest memory under
  /// page sharing). The STL master shares all but its not-yet-published
  /// dirty pages with the snapshot, so those appear here after the next
  /// publish.
  uint64_t resident_index_bytes = 0;
  // Sharded serving (engine/sharded_engine.h); zero / empty for the
  // flat QueryEngine.
  uint32_t num_shards = 0;           ///< Cells served (0 = unsharded).
  uint32_t boundary_vertices = 0;    ///< Overlay size |S|.
  uint64_t overlay_republishes = 0;  ///< Overlay tables published.
  /// Time spent rebuilding boundary cliques + the all-pairs overlay
  /// table (a subset of publish_total_micros).
  double overlay_rebuild_micros = 0;
  std::vector<ShardStats> shards;    ///< Per-shard counters.
  double wall_seconds = 0;           ///< Wall time since start / reset.
  double queries_per_second = 0;     ///< queries_served / wall_seconds.
  double latency_mean_micros = 0;    ///< Mean request latency.
  double latency_p50_micros = 0;     ///< Median request latency.
  double latency_p99_micros = 0;     ///< 99th-percentile latency.
  double latency_max_micros = 0;     ///< Largest observed latency.
};

/// Concurrent query-serving engine. Thread-safe: Submit/SubmitBatch/
/// EnqueueUpdate/Flush/Stats may be called from any thread.
class QueryEngine {
 public:
  /// Takes ownership of the graph, builds the backend selected by
  /// `options.backend`, starts the workers, and publishes epoch 0.
  QueryEngine(Graph graph, const HierarchyOptions& hierarchy_options,
              const EngineOptions& options = {});

  /// Drains: answers every submitted query and applies every enqueued
  /// update before returning.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;             ///< Not copyable.
  QueryEngine& operator=(const QueryEngine&) = delete;  ///< Not copyable.

  /// Schedules one distance query; the future resolves when a reader
  /// thread has answered it.
  std::future<QueryResult> Submit(QueryPair query);

  /// Schedules many queries (one future each).
  std::vector<std::future<QueryResult>> SubmitBatch(
      const std::vector<QueryPair>& queries);

  /// Records a desired new weight for an edge. The writer re-resolves
  /// the old weight from the master graph at apply time, so callers need
  /// not know the current weight (update.old_weight is ignored).
  void EnqueueUpdate(const WeightUpdate& update);
  /// Convenience overload of EnqueueUpdate(const WeightUpdate&).
  void EnqueueUpdate(EdgeId edge, Weight new_weight);

  /// Enqueues many updates atomically (one lock, one writer wakeup): the
  /// writer cannot pop a partial prefix, so up to max_batch_size of them
  /// land in the same maintenance batch / epoch.
  void EnqueueUpdates(const std::vector<WeightUpdate>& updates);

  /// Blocks until every update enqueued before the call has been applied
  /// and, if it changed any weight, published in a snapshot.
  void Flush();

  /// The latest published snapshot (never null after construction).
  std::shared_ptr<const EngineSnapshot> CurrentSnapshot() const {
    return current_.load();
  }

  /// Epoch of the latest published snapshot.
  uint64_t CurrentEpoch() const { return CurrentSnapshot()->epoch; }

  /// The index family serving this engine.
  BackendKind backend() const { return options_.backend; }
  /// What the selected backend supports (path queries, CoW, ...).
  const BackendCapabilities& capabilities() const { return capabilities_; }

  /// Point-in-time counters and latency summary.
  EngineStats Stats() const;

  /// Zeroes counters (except the epoch allocator) and the latency
  /// histogram and restarts the wall clock (for bench warmup). Call only
  /// while no queries are in flight.
  void ResetStats();

  /// Reader thread count.
  int num_query_threads() const { return pool_.num_threads(); }

 private:
  void WriterLoop();
  /// Publishes the master index state as epoch `epoch`. Called only by
  /// the writer thread (or the constructor, before concurrency starts).
  void PublishSnapshot(uint64_t epoch);

  const EngineOptions options_;

  // Master state, owned by the writer after construction (no other
  // thread reads it: queries and Stats() work off published snapshots).
  // graph_ is heap-allocated so its address stays stable for the
  // backend's non-owning pointer.
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<DistanceIndex> index_;
  BackendCapabilities capabilities_;

  AtomicSharedPtr<const EngineSnapshot> current_;

  // Pending-update queue (writer input; shared protocol with the
  // sharded engine — engine/update_queue.h).
  UpdateQueue updates_;

  std::thread writer_;

  // Last-harvested cumulative CoW counters of the master graph; only the
  // publishing thread touches these, so per-epoch deltas need no
  // synchronization. (The label-side harvest lives in the STL backend.)
  uint64_t harvested_graph_chunks_ = 0;
  uint64_t harvested_graph_bytes_ = 0;

  // Serving-side stats (relaxed atomics: monitoring, not coordination).
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> updates_coalesced_{0};
  std::atomic<uint64_t> epochs_published_{0};
  BatchExecutionCounters batch_counters_;
  std::atomic<uint64_t> label_pages_cloned_{0};
  std::atomic<uint64_t> graph_chunks_cloned_{0};
  std::atomic<uint64_t> cow_bytes_cloned_{0};
  std::atomic<uint64_t> publish_bytes_deep_copied_{0};
  std::atomic<uint64_t> publish_nanos_{0};
  LatencyHistogram latency_;
  Timer wall_;

  ThreadPool pool_;  // last member: workers die before state they touch
};

}  // namespace stl

#endif  // STL_ENGINE_QUERY_ENGINE_H_
