#include "dist/socket_transport.h"

#include <cstring>
#include <utility>

#include "util/logging.h"

namespace stl {

namespace {
/// Frame header: u32 length (tag + payload bytes) followed by u64 tag.
constexpr size_t kLenBytes = sizeof(uint32_t);
constexpr size_t kTagBytes = sizeof(uint64_t);
/// Sanity bound on one frame's body: a shard response is at most one
/// boundary row (|S| weights), far below this; anything larger is a
/// corrupted or hostile length prefix, not a real message.
constexpr uint32_t kMaxFrameBody = 1u << 28;
}  // namespace

void EncodeFrame(uint64_t tag, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out) {
  const uint32_t body =
      static_cast<uint32_t>(kTagBytes + payload.size());
  STL_CHECK(payload.size() <= kMaxFrameBody - kTagBytes);
  const size_t base = out->size();
  out->resize(base + kLenBytes + body);
  std::memcpy(out->data() + base, &body, kLenBytes);
  std::memcpy(out->data() + base + kLenBytes, &tag, kTagBytes);
  if (!payload.empty()) {
    std::memcpy(out->data() + base + kLenBytes + kTagBytes,
                payload.data(), payload.size());
  }
}

Status DecodeFrame(const uint8_t* data, size_t size, WireFrame* frame,
                   size_t* consumed) {
  *consumed = 0;
  if (size < kLenBytes) {
    return Status::Unavailable("frame: length prefix incomplete");
  }
  uint32_t body = 0;
  std::memcpy(&body, data, kLenBytes);
  if (body < kTagBytes || body > kMaxFrameBody) {
    return Status::Corruption("frame: implausible length prefix");
  }
  if (size < kLenBytes + body) {
    return Status::Unavailable("frame: body incomplete");
  }
  std::memcpy(&frame->tag, data + kLenBytes, kTagBytes);
  frame->payload.assign(data + kLenBytes + kTagBytes,
                        data + kLenBytes + body);
  *consumed = kLenBytes + body;
  return Status::OK();
}

SocketTransport::SocketTransport(std::vector<std::string> endpoints)
    : endpoints_(std::move(endpoints)) {}

uint32_t SocketTransport::NumEndpoints() const {
  return static_cast<uint32_t>(endpoints_.size());
}

void SocketTransport::Send(uint32_t endpoint, uint64_t tag,
                           std::vector<uint8_t> request,
                           TransportSink* sink) {
  STL_CHECK(endpoint < endpoints_.size());
  STL_CHECK(sink != nullptr);
  // Exercise the framing path the real implementation will write to
  // the socket, then fail the attempt: no connection machinery yet.
  std::vector<uint8_t> framed;
  EncodeFrame(tag, request, &framed);
  sink->OnResponse(
      tag,
      Status::Unavailable("socket transport: not connected (skeleton)"),
      {});
}

}  // namespace stl
