#include "dist/loopback_transport.h"

#include <chrono>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace stl {

LoopbackTransport::LoopbackTransport(FaultInjector* faults)
    : faults_(faults) {}

uint32_t LoopbackTransport::AddEndpoint(Handler handler) {
  STL_CHECK(handler != nullptr);
  endpoints_.push_back(std::move(handler));
  return static_cast<uint32_t>(endpoints_.size() - 1);
}

uint32_t LoopbackTransport::NumEndpoints() const {
  return static_cast<uint32_t>(endpoints_.size());
}

void LoopbackTransport::Send(uint32_t endpoint, uint64_t tag,
                             std::shared_ptr<const std::vector<uint8_t>> request,
                             TransportSink* sink) {
  STL_CHECK(endpoint < endpoints_.size());
  STL_CHECK(sink != nullptr);
  STL_CHECK(request != nullptr);
  if (faults_ != nullptr && faults_->Fire(FaultSite::kTransportDelay)) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        faults_->DelayMicros(FaultSite::kTransportDelay)));
  }
  if (faults_ != nullptr && faults_->Fire(FaultSite::kTransportDrop)) {
    // The request is lost. Deliver the caller's timeout verdict
    // immediately instead of actually waiting one out: same observable
    // outcome (a typed kUnavailable for this attempt), deterministic
    // schedule.
    sink->OnResponse(tag, Status::Unavailable("transport: request dropped"),
                     {});
    return;
  }
  std::vector<uint8_t> response =
      endpoints_[endpoint](request->data(), request->size());
  const bool duplicate =
      faults_ != nullptr && faults_->Fire(FaultSite::kTransportDuplicate);
  if (duplicate) {
    // First delivery of the duplicated response; the receiver's
    // one-shot tag claim must absorb the second one below.
    sink->OnResponse(tag, Status::OK(), response);
  }
  sink->OnResponse(tag, Status::OK(), std::move(response));
}

}  // namespace stl
