// Tests for the Section 8 structural-change extension: road closures as
// effectively-infinite weight increases, and their reopening.
#include <gtest/gtest.h>

#include "core/stl_index.h"
#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

using testing_util::LabelDiffCount;

/// Reference distance in the graph with the closed edges removed.
Weight DistanceWithout(const Graph& g, const std::vector<EdgeId>& closed,
                       Vertex s, Vertex t) {
  std::vector<Edge> edges;
  std::vector<bool> drop(g.NumEdges(), false);
  for (EdgeId e : closed) drop[e] = true;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!drop[e]) edges.push_back(g.GetEdge(e));
  }
  Graph reduced = testing_util::MakeGraph(g.NumVertices(), std::move(edges));
  Dijkstra dij(reduced);
  return dij.Distance(s, t);
}

TEST(ClosureTest, CloseRoadMatchesEdgeRemoval) {
  Graph g = testing_util::SmallRoadNetwork(10, 1);
  const Graph original = g;
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Rng rng(1);
  for (int round = 0; round < 6; ++round) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(g.NumEdges()));
    UpdateBatch closure = idx.CloseRoad(e);
    for (int i = 0; i < 50; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      Weight want = DistanceWithout(original, {e}, s, t);
      Weight got = idx.Query(s, t);
      // Distances below the closure threshold must match exactly; paths
      // forced over a "closed" road surface as >= kMaxEdgeWeight.
      if (want < kMaxEdgeWeight) {
        ASSERT_EQ(got, want) << "s=" << s << " t=" << t;
      } else {
        ASSERT_GE(got, kMaxEdgeWeight);
      }
    }
    idx.ReopenRoads(closure);
  }
}

TEST(ClosureTest, CloseIntersectionMatchesVertexRemoval) {
  Graph g = testing_util::SmallRoadNetwork(9, 2);
  const Graph original = g;
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Rng rng(2);
  for (int round = 0; round < 4; ++round) {
    Vertex closed =
        static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    std::vector<EdgeId> incident;
    for (const Arc& a : original.ArcsOf(closed)) incident.push_back(a.edge);
    UpdateBatch closure = idx.CloseIntersection(closed);
    EXPECT_EQ(closure.size(), incident.size());
    for (int i = 0; i < 40; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      if (s == closed || t == closed) continue;
      Weight want = DistanceWithout(original, incident, s, t);
      Weight got = idx.Query(s, t);
      if (want < kMaxEdgeWeight) {
        ASSERT_EQ(got, want);
      } else {
        ASSERT_GE(got, kMaxEdgeWeight);
      }
    }
    idx.ReopenRoads(closure);
  }
}

TEST(ClosureTest, ReopenRestoresLabelsExactly) {
  Graph g = testing_util::SmallRoadNetwork(10, 3);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Labelling before = idx.labels();
  UpdateBatch c1 = idx.CloseRoad(5 % g.NumEdges());
  UpdateBatch c2 = idx.CloseIntersection(7 % g.NumVertices());
  idx.ReopenRoads(c2);
  idx.ReopenRoads(c1);
  EXPECT_EQ(LabelDiffCount(idx.labels(), before), 0u);
}

TEST(ClosureTest, DoubleCloseIsIdempotent) {
  Graph g = testing_util::SmallRoadNetwork(8, 4);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  EdgeId e = 3 % g.NumEdges();
  UpdateBatch c1 = idx.CloseRoad(e);
  EXPECT_EQ(c1.size(), 1u);
  UpdateBatch c2 = idx.CloseRoad(e);  // already closed
  EXPECT_TRUE(c2.empty());
  idx.ReopenRoads(c1);
  EXPECT_EQ(idx.graph().EdgeWeight(e), c1.front().old_weight);
}

TEST(ClosureTest, ParetoStrategyWorksForClosures) {
  Graph g = testing_util::SmallRoadNetwork(9, 5);
  StlIndex idx = StlIndex::Build(&g, HierarchyOptions{});
  Labelling before = idx.labels();
  UpdateBatch c =
      idx.CloseRoad(2 % g.NumEdges(), MaintenanceStrategy::kParetoSearch);
  idx.ReopenRoads(c, MaintenanceStrategy::kParetoSearch);
  EXPECT_EQ(LabelDiffCount(idx.labels(), before), 0u);
}

}  // namespace
}  // namespace stl
