// Shared helpers for the test suites.
#ifndef STL_TESTS_TEST_UTIL_H_
#define STL_TESTS_TEST_UTIL_H_

#include <map>
#include <memory>
#include <vector>

#include "core/labelling.h"
#include "core/tree_hierarchy.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/updates.h"
#include "util/rng.h"

namespace stl {
namespace testing_util {

/// Small connected road-like graph (~n vertices), deterministic in seed.
inline Graph SmallRoadNetwork(uint32_t side, uint64_t seed) {
  RoadNetworkOptions opt;
  opt.width = side;
  opt.height = side;
  opt.seed = seed;
  return GenerateRoadNetwork(opt);
}

/// Hand-built graph from an edge list; dies on invalid input.
inline Graph MakeGraph(uint32_t n, std::vector<Edge> edges) {
  Result<Graph> g = Graph::FromEdges(n, std::move(edges));
  STL_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// A graph with two components: a triangle {0,1,2} and an edge {3,4}.
inline Graph TwoComponentGraph() {
  return MakeGraph(5, {{0, 1, 4}, {1, 2, 5}, {0, 2, 10}, {3, 4, 7}});
}

/// The number of differing label entries between two labellings of the
/// same shape (UINT64_MAX if shapes differ).
inline uint64_t LabelDiffCount(const Labelling& a, const Labelling& b) {
  if (a.NumVertices() != b.NumVertices()) return UINT64_MAX;
  uint64_t diff = 0;
  for (Vertex v = 0; v < a.NumVertices(); ++v) {
    if (a.LabelSize(v) != b.LabelSize(v)) return UINT64_MAX;
    for (uint32_t i = 0; i < a.LabelSize(v); ++i) {
      if (a.At(v, i) != b.At(v, i)) ++diff;
    }
  }
  return diff;
}

/// Per-epoch Dijkstra ground truth, built lazily per distinct epoch —
/// the audit helper the engine/sharded/overlay/router suites share.
/// Each epoch's oracle is constructed from that epoch's snapshot graph
/// the first time the epoch is seen and reused for every later audit of
/// the same epoch.
class EpochOracle {
 public:
  /// The oracle for `epoch`, built from `graph` on first use (`graph`
  /// must be that epoch's full-network weights). The oracle keeps its
  /// own copy of the graph (CoW-cheap), so the caller's snapshot need
  /// not outlive it.
  Dijkstra& For(uint64_t epoch, const Graph& graph) {
    auto [it, fresh] = oracles_.try_emplace(epoch);
    if (fresh) {
      it->second.graph = graph;  // structural chunk share
      it->second.dijkstra = std::make_unique<Dijkstra>(it->second.graph);
    }
    return *it->second.dijkstra;
  }

  /// Exact distance under `epoch`'s weights.
  Weight Distance(uint64_t epoch, const Graph& graph, Vertex s, Vertex t) {
    return For(epoch, graph).Distance(s, t);
  }

  /// The already-built oracle for `epoch` (dies if the epoch was never
  /// seen by For/Distance).
  Dijkstra& At(uint64_t epoch) { return *oracles_.at(epoch).dijkstra; }

 private:
  /// One epoch's ground truth; the map node owns the graph the Dijkstra
  /// references (std::map nodes are address-stable).
  struct Entry {
    Graph graph;
    std::unique_ptr<Dijkstra> dijkstra;
  };
  std::map<uint64_t, Entry> oracles_;
};

/// Random weight update on a random edge (never a no-op); flips a coin
/// between increase and decrease.
inline WeightUpdate RandomUpdate(const Graph& g, Rng* rng) {
  EdgeId e = static_cast<EdgeId>(rng->NextBounded(g.NumEdges()));
  Weight w = g.EdgeWeight(e);
  bool inc = rng->NextBounded(2) == 0;
  Weight nw;
  if (inc || w <= 1) {
    nw = w + 1 + static_cast<Weight>(rng->NextBounded(2 * w + 2));
  } else {
    nw = 1 + static_cast<Weight>(rng->NextBounded(w - 1));
  }
  return WeightUpdate{e, w, nw};
}

}  // namespace testing_util
}  // namespace stl

#endif  // STL_TESTS_TEST_UTIL_H_
