// Unit tests for the network layer (src/net/): frame codec
// resegmentation, EventLoop post/timer semantics, FrameServer echo
// with stream reassembly, short-I/O fault integrity and
// SocketTransport reconnection after a server restart.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/socket_transport.h"
#include "engine/fault_injector.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/server.h"

namespace stl {
namespace {

using namespace std::chrono_literals;

std::vector<uint8_t> Bytes(std::initializer_list<int> xs) {
  std::vector<uint8_t> out;
  for (int x : xs) out.push_back(static_cast<uint8_t>(x));
  return out;
}

TEST(FrameCodecTest, RoundTripBackToBack) {
  std::vector<uint8_t> stream;
  EncodeFrame(7, Bytes({1, 2, 3}), &stream);
  EncodeFrame(9, {}, &stream);
  EncodeFrame(1ull << 40, Bytes({0xff}), &stream);

  WireFrame frame;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(stream.data(), stream.size(), &frame, &consumed).ok());
  EXPECT_EQ(frame.tag, 7u);
  EXPECT_EQ(frame.payload, Bytes({1, 2, 3}));
  size_t off = consumed;

  ASSERT_TRUE(
      DecodeFrame(stream.data() + off, stream.size() - off, &frame, &consumed)
          .ok());
  EXPECT_EQ(frame.tag, 9u);
  EXPECT_TRUE(frame.payload.empty());
  off += consumed;

  ASSERT_TRUE(
      DecodeFrame(stream.data() + off, stream.size() - off, &frame, &consumed)
          .ok());
  EXPECT_EQ(frame.tag, 1ull << 40);
  off += consumed;
  EXPECT_EQ(off, stream.size());
}

TEST(FrameCodecTest, IncompletePrefixAsksForMoreBytes) {
  std::vector<uint8_t> stream;
  EncodeFrame(42, Bytes({5, 6, 7, 8}), &stream);

  // Every strict prefix must come back kUnavailable with consumed == 0:
  // this retry contract is what Conn's read loop resumes on.
  for (size_t len = 0; len < stream.size(); ++len) {
    WireFrame frame;
    size_t consumed = 1;
    Status st = DecodeFrame(stream.data(), len, &frame, &consumed);
    EXPECT_FALSE(st.ok()) << "prefix " << len;
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << "prefix " << len;
    EXPECT_EQ(consumed, 0u) << "prefix " << len;
  }
}

TEST(FrameCodecTest, ImplausibleLengthIsCorruption) {
  std::vector<uint8_t> stream(kFrameLenBytes + kFrameTagBytes, 0);
  const uint32_t bogus = kMaxFrameBody + 1;
  std::memcpy(stream.data(), &bogus, sizeof bogus);
  WireFrame frame;
  size_t consumed = 0;
  Status st = DecodeFrame(stream.data(), stream.size(), &frame, &consumed);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(EventLoopTest, PostedTasksRunInOrderOnLoopThread) {
  EventLoop loop;
  loop.Start();

  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> order;
  bool all_on_loop = true;
  for (int i = 0; i < 16; ++i) {
    loop.Post([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      all_on_loop = all_on_loop && loop.InLoopThread();
      order.push_back(i);
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return order.size() == 16; }));
  EXPECT_TRUE(all_on_loop);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
  loop.Stop();
}

TEST(EventLoopTest, TimersFireAndCancel) {
  EventLoop loop;
  loop.Start();

  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  bool cancelled_fired = false;
  loop.Post([&] {
    const auto now = std::chrono::steady_clock::now();
    uint64_t doomed = loop.AddTimer(now + 20ms, [&] {
      std::lock_guard<std::mutex> lock(mu);
      cancelled_fired = true;
    });
    loop.CancelTimer(doomed);
    loop.AddTimer(now + 30ms, [&] {
      std::lock_guard<std::mutex> lock(mu);
      fired = true;
      cv.notify_all();
    });
  });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return fired; }));
  EXPECT_FALSE(cancelled_fired);
  lock.unlock();
  loop.Stop();
}

TEST(EventLoopTest, PostAfterStopIsDropped) {
  EventLoop loop;
  loop.Start();
  loop.Stop();
  bool ran = false;
  loop.Post([&] { ran = true; });  // must not crash, must not run
  EXPECT_FALSE(ran);
}

/// Collects transport responses: per-tag delivery counts plus the ok
/// payloads, with a waitable total.
class CollectSink final : public TransportSink {
 public:
  void OnResponse(uint64_t tag, Status transport_status,
                  std::vector<uint8_t> payload) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++deliveries_[tag];
    if (transport_status.ok()) {
      ok_payloads_[tag] = std::move(payload);
    } else {
      ++failures_;
    }
    ++total_;
    cv_.notify_all();
  }

  bool WaitForTotal(size_t n, std::chrono::seconds timeout = 30s) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return total_ >= n; });
  }

  size_t total() {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }
  size_t failures() {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }
  std::map<uint64_t, size_t> deliveries() {
    std::lock_guard<std::mutex> lock(mu_);
    return deliveries_;
  }
  std::map<uint64_t, std::vector<uint8_t>> ok_payloads() {
    std::lock_guard<std::mutex> lock(mu_);
    return ok_payloads_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, size_t> deliveries_;
  std::map<uint64_t, std::vector<uint8_t>> ok_payloads_;
  size_t failures_ = 0;
  size_t total_ = 0;
};

FrameServer::Handler EchoHandler() {
  return [](const uint8_t* data, size_t size) {
    return std::vector<uint8_t>(data, data + size);
  };
}

std::shared_ptr<const std::vector<uint8_t>> SharedBytes(
    std::vector<uint8_t> bytes) {
  return std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
}

TEST(FrameServerTest, EchoRoundTripIncludingLargeFrames) {
  FrameServer server(FrameServer::Options{}, EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  SocketTransport transport(
      {"127.0.0.1:" + std::to_string(server.port())});
  CollectSink sink;

  // A spread of sizes, including one large enough (1 MiB) that the
  // kernel cannot take or deliver it in one syscall — this exercises
  // the partial-write drain and multi-read reassembly paths even
  // without fault injection.
  std::map<uint64_t, std::vector<uint8_t>> sent;
  uint64_t tag = 1;
  for (size_t size : {0ul, 1ul, 13ul, 4096ul, 1ul << 20}) {
    std::vector<uint8_t> payload(size);
    for (size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<uint8_t>((size + i * 131) & 0xff);
    }
    sent[tag] = payload;
    transport.Send(0, tag, SharedBytes(std::move(payload)), &sink);
    ++tag;
  }

  ASSERT_TRUE(sink.WaitForTotal(sent.size()));
  EXPECT_EQ(sink.failures(), 0u);
  auto got = sink.ok_payloads();
  ASSERT_EQ(got.size(), sent.size());
  for (const auto& [t, payload] : sent) {
    EXPECT_EQ(got[t], payload) << "tag " << t;
  }
  EXPECT_EQ(server.connections_accepted(), 1u)
      << "one multiplexed connection expected";
}

TEST(FrameServerTest, WorkerPoolOffloadServesConcurrently) {
  FrameServer::Options opt;
  opt.worker_threads = 2;
  FrameServer server(opt, EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  SocketTransport transport(
      {"127.0.0.1:" + std::to_string(server.port())});
  CollectSink sink;
  constexpr size_t kRequests = 64;
  for (uint64_t t = 1; t <= kRequests; ++t) {
    transport.Send(0, t, SharedBytes(Bytes({int(t & 0xff), 2, 3})), &sink);
  }
  ASSERT_TRUE(sink.WaitForTotal(kRequests));
  EXPECT_EQ(sink.failures(), 0u);
  for (const auto& [t, n] : sink.deliveries()) EXPECT_EQ(n, 1u) << "tag " << t;
}

TEST(NetFaultTest, ShortIoNeverLosesOrDoublesTags) {
  // kSocketShortIo on the client side: every firing clamps an I/O to
  // one byte, every eighth severs the stream. Every tag must still be
  // answered exactly once — with the exact echo, or with a typed
  // kUnavailable for attempts caught by a sever.
  SeededFaultInjector faults(0xc0ffee);
  faults.SetRate(FaultSite::kSocketShortIo, 0.05);

  FrameServer server(FrameServer::Options{}, EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  SocketTransportOptions opt;
  opt.faults = &faults;
  opt.backoff_initial = 1ms;
  opt.backoff_max = 5ms;
  SocketTransport transport(
      {"127.0.0.1:" + std::to_string(server.port())}, opt);

  CollectSink sink;
  constexpr uint64_t kRequests = 200;
  std::map<uint64_t, std::vector<uint8_t>> sent;
  for (uint64_t t = 1; t <= kRequests; ++t) {
    std::vector<uint8_t> payload(32);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>((t * 31 + i) & 0xff);
    }
    sent[t] = payload;
    transport.Send(0, t, SharedBytes(std::move(payload)), &sink);
    if (t % 16 == 0) {
      // Let in-flight tags settle occasionally so a sever's backoff
      // window doesn't fail the whole remaining batch at once.
      std::this_thread::sleep_for(2ms);
    }
  }

  ASSERT_TRUE(sink.WaitForTotal(kRequests));
  EXPECT_GT(faults.fired(FaultSite::kSocketShortIo), 0u)
      << "fault schedule never fired; the test asserts nothing";
  auto deliveries = sink.deliveries();
  ASSERT_EQ(deliveries.size(), kRequests) << "every tag answered";
  for (const auto& [t, n] : deliveries) {
    EXPECT_EQ(n, 1u) << "tag " << t << " delivered more than once";
  }
  for (const auto& [t, payload] : sink.ok_payloads()) {
    EXPECT_EQ(payload, sent[t]) << "tag " << t << " echo corrupted";
  }
}

TEST(SocketTransportTest, ReconnectsAfterServerRestart) {
  auto server = std::make_unique<FrameServer>(FrameServer::Options{},
                                              EchoHandler());
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  SocketTransportOptions opt;
  opt.backoff_initial = 1ms;
  opt.backoff_max = 10ms;
  SocketTransport transport({"127.0.0.1:" + std::to_string(port)}, opt);

  CollectSink sink;
  transport.Send(0, 1, SharedBytes(Bytes({1})), &sink);
  ASSERT_TRUE(sink.WaitForTotal(1));
  EXPECT_EQ(sink.failures(), 0u);

  // Kill the server; the established connection dies and subsequent
  // sends fail typed until a replacement server appears.
  server->Stop();
  server.reset();
  transport.Send(0, 2, SharedBytes(Bytes({2})), &sink);
  ASSERT_TRUE(sink.WaitForTotal(2));
  EXPECT_EQ(sink.failures(), 1u);

  // Restart on the same port (SO_REUSEADDR) and keep sending until a
  // redial lands: the channel must recover without a new transport.
  FrameServer::Options reopen;
  reopen.port = port;
  server = std::make_unique<FrameServer>(reopen, EchoHandler());
  ASSERT_TRUE(server->Start().ok());

  bool recovered = false;
  uint64_t tag = 3;
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    const size_t before = sink.total();
    transport.Send(0, tag++, SharedBytes(Bytes({3})), &sink);
    ASSERT_TRUE(sink.WaitForTotal(before + 1));
    recovered = sink.ok_payloads().size() >= 2;  // tag 1 plus a post-restart ok
    if (!recovered) std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(recovered) << "transport never recovered after restart";
  EXPECT_GE(transport.reconnects(), 1u);
}

}  // namespace
}  // namespace stl
