#include "core/labelling.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

struct Built {
  Graph g;
  TreeHierarchy h;
  Labelling labels;
};

Built BuildAll(Graph g, uint64_t seed) {
  HierarchyOptions opt;
  opt.seed = seed;
  TreeHierarchy h = TreeHierarchy::Build(g, opt);
  Labelling labels = BuildLabelling(g, h);
  return Built{std::move(g), std::move(h), std::move(labels)};
}

TEST(LabellingTest, ShapeMatchesHierarchy) {
  auto b = BuildAll(testing_util::SmallRoadNetwork(10, 1), 1);
  EXPECT_EQ(b.labels.NumVertices(), b.g.NumVertices());
  for (Vertex v = 0; v < b.g.NumVertices(); ++v) {
    EXPECT_EQ(b.labels.LabelSize(v), b.h.LabelSize(v));
    EXPECT_EQ(b.labels.At(v, b.h.Tau(v)), 0u);  // self entry
  }
  EXPECT_EQ(b.labels.TotalEntries(), b.h.TotalLabelEntries());
}

TEST(LabellingTest, EntriesAreSubgraphDistances) {
  // Definition 4.6: L_v[tau(r)] is the distance in G[Desc(r)], not in G.
  auto b = BuildAll(testing_util::SmallRoadNetwork(8, 3), 3);
  Rng rng(3);
  int checked = 0;
  for (int i = 0; i < 400 && checked < 120; ++i) {
    Vertex v = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
    uint32_t col = static_cast<uint32_t>(rng.NextBounded(b.h.LabelSize(v)));
    Vertex r = b.h.AncestorAt(v, col);
    // Build the induced subgraph Desc(r) = {x : tau(x) >= tau(r)}.
    const uint32_t tr = b.h.Tau(r);
    std::vector<uint32_t> remap(b.g.NumVertices(), UINT32_MAX);
    uint32_t next = 0;
    for (Vertex x = 0; x < b.g.NumVertices(); ++x) {
      // Desc(r): on or below r's node, i.e. tau >= tau(r) AND r on the
      // root path. Comparability via path prefix.
      if (b.h.Tau(x) < tr) continue;
      auto px = b.h.PathOf(b.h.NodeOf(x));
      auto pr = b.h.PathOf(b.h.NodeOf(r));
      if (px.size() < pr.size() || px[pr.size() - 1] != pr[pr.size() - 1]) {
        continue;
      }
      remap[x] = next++;
    }
    if (remap[v] == UINT32_MAX) continue;  // v not below r (can't happen)
    std::vector<Edge> edges;
    for (const Edge& e : b.g.edges()) {
      if (remap[e.u] != UINT32_MAX && remap[e.v] != UINT32_MAX) {
        edges.push_back(Edge{remap[e.u], remap[e.v], e.w});
      }
    }
    Graph sub = testing_util::MakeGraph(next, std::move(edges));
    Dijkstra dij(sub);
    EXPECT_EQ(b.labels.At(v, col), dij.Distance(remap[r], remap[v]))
        << "v=" << v << " r=" << r;
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

TEST(LabellingTest, TwoHopCoverProperty) {
  // Lemma 4.7: for every pair some common-ancestor column is tight.
  auto b = BuildAll(testing_util::SmallRoadNetwork(9, 5), 5);
  Dijkstra dij(b.g);
  Rng rng(55);
  for (int i = 0; i < 300; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
    Weight want = dij.Distance(s, t);
    uint32_t k = b.h.CommonAncestorCount(s, t);
    Weight best = kInfDistance;
    bool never_below = true;
    for (uint32_t j = 0; j < k; ++j) {
      Weight cand = SaturatingAdd(b.labels.At(s, j), b.labels.At(t, j));
      never_below = never_below && cand >= want;
      best = std::min(best, cand);
    }
    EXPECT_TRUE(never_below);  // labels never undercut the true distance
    EXPECT_EQ(best, want) << "s=" << s << " t=" << t;
  }
}

class QueryAgreement
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(QueryAgreement, MatchesDijkstra) {
  auto [side, seed] = GetParam();
  auto b = BuildAll(testing_util::SmallRoadNetwork(side, seed), seed);
  Dijkstra dij(b.g);
  Rng rng(seed * 101 + side);
  for (int i = 0; i < 250; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
    EXPECT_EQ(QueryDistance(b.h, b.labels, s, t), dij.Distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueryAgreement,
    ::testing::Combine(::testing::Values(6u, 10u, 16u),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(LabellingTest, QueryIsSymmetric) {
  auto b = BuildAll(testing_util::SmallRoadNetwork(10, 7), 7);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
    EXPECT_EQ(QueryDistance(b.h, b.labels, s, t),
              QueryDistance(b.h, b.labels, t, s));
  }
}

TEST(LabellingTest, SelfQueryIsZero) {
  auto b = BuildAll(testing_util::SmallRoadNetwork(7, 2), 2);
  for (Vertex v = 0; v < b.g.NumVertices(); v += 3) {
    EXPECT_EQ(QueryDistance(b.h, b.labels, v, v), 0u);
  }
}

TEST(LabellingTest, DisconnectedPairsAreInf) {
  auto b = BuildAll(testing_util::TwoComponentGraph(), 9);
  EXPECT_EQ(QueryDistance(b.h, b.labels, 0, 3), kInfDistance);
  EXPECT_EQ(QueryDistance(b.h, b.labels, 4, 1), kInfDistance);
  Dijkstra dij(b.g);
  EXPECT_EQ(QueryDistance(b.h, b.labels, 0, 2), dij.Distance(0, 2));
  EXPECT_EQ(QueryDistance(b.h, b.labels, 3, 4), 7u);
}

TEST(LabellingTest, RandomGraphsNotJustGrids) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = GenerateRandomConnectedGraph(150, 120, 1, 40, seed);
    auto b = BuildAll(std::move(g), seed);
    Dijkstra dij(b.g);
    Rng rng(seed);
    for (int i = 0; i < 150; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
      ASSERT_EQ(QueryDistance(b.h, b.labels, s, t), dij.Distance(s, t))
          << "seed=" << seed << " s=" << s << " t=" << t;
    }
  }
}

TEST(LabellingTest, RebuildColumnIsIdempotent) {
  auto b = BuildAll(testing_util::SmallRoadNetwork(8, 11), 11);
  Labelling copy = b.labels;
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    Vertex r = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
    RebuildColumn(b.g, b.h, r, &copy);
  }
  EXPECT_EQ(testing_util::LabelDiffCount(b.labels, copy), 0u);
}

TEST(LabellingTest, SerializeRoundTrip) {
  auto b = BuildAll(testing_util::SmallRoadNetwork(8, 13), 13);
  const std::string path = std::string(::testing::TempDir()) + "/lab.bin";
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 1, 1).ok());
    ASSERT_TRUE(b.labels.Serialize(&w).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  Labelling l2;
  BinaryReader r;
  ASSERT_TRUE(r.Open(path, 1, 1).ok());
  ASSERT_TRUE(l2.Deserialize(&r).ok());
  EXPECT_TRUE(b.labels == l2);
}

TEST(LabellingTest, PagedLayoutKeepsEachLabelContiguous) {
  auto b = BuildAll(testing_util::SmallRoadNetwork(16, 15), 15);
  // Data(v) must be one contiguous block equal to the At() view — the
  // paging layer may never split a label across pages.
  for (Vertex v = 0; v < b.g.NumVertices(); ++v) {
    const Weight* data = b.labels.Data(v);
    for (uint32_t i = 0; i < b.labels.LabelSize(v); ++i) {
      ASSERT_EQ(data[i], b.labels.At(v, i)) << "v=" << v << " i=" << i;
    }
  }
  // A 16x16 network has well over one page of label entries.
  EXPECT_GT(b.labels.PageCount(), 1u);
  EXPECT_GT(b.labels.MemoryBytes(),
            b.labels.TotalEntries() * sizeof(Weight));
}

TEST(LabellingTest, CowCopiesAreIsolatedFromWriterMutations) {
  // The randomized aliasing audit: hold N structurally shared copies
  // (simulated old snapshots), keep mutating the master through the CoW
  // write path, and verify every held copy stays byte-for-byte equal to
  // the deep copy frozen at its capture time.
  auto b = BuildAll(testing_util::SmallRoadNetwork(10, 17), 17);
  Rng rng(17);
  std::vector<Labelling> held;
  std::vector<Labelling> frozen;
  for (int round = 0; round < 8; ++round) {
    held.push_back(b.labels);            // refcount bumps only
    frozen.push_back(b.labels.DeepCopy());
    for (int i = 0; i < 60; ++i) {
      Vertex v = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
      uint32_t idx =
          static_cast<uint32_t>(rng.NextBounded(b.labels.LabelSize(v)));
      Weight val = static_cast<Weight>(rng.NextBounded(kInfDistance));
      if (rng.NextBounded(2) == 0) {
        b.labels.Set(v, idx, val);
      } else {
        b.labels.MutableData(v)[idx] = val;  // the engines' fast path
      }
    }
    for (size_t c = 0; c < held.size(); ++c) {
      ASSERT_TRUE(held[c] == frozen[c]) << "round " << round << " copy "
                                        << c << " mutated through aliasing";
    }
  }
  const CowChunkStats cow = b.labels.cow_stats();
  EXPECT_GT(cow.chunks_cloned, 0u);
  // Clone cost is bounded by the page granularity: never more bytes than
  // dirty pages times the largest physical page (the CI bench guard's
  // invariant; MaxPageBytes == kPageEntries * 4 unless a label overflows
  // a page and owns a dedicated one).
  const uint64_t page_cap =
      std::max<uint64_t>(Labelling::kPageEntries * sizeof(Weight),
                         b.labels.MaxPageBytes());
  EXPECT_LE(cow.bytes_cloned, cow.chunks_cloned * page_cap);
}

TEST(LabellingTest, SoleOwnerWritesDoNotClone) {
  auto b = BuildAll(testing_util::SmallRoadNetwork(8, 19), 19);
  EXPECT_EQ(b.labels.cow_stats().chunks_cloned, 0u);  // build never clones
  b.labels.Set(0, 0, 5);
  EXPECT_EQ(b.labels.cow_stats().chunks_cloned, 0u);
  {
    Labelling copy = b.labels;
    b.labels.Set(0, 0, 6);  // shared now: must detach
    EXPECT_EQ(b.labels.cow_stats().chunks_cloned, 1u);
    EXPECT_EQ(copy.At(0, 0), 5u);
    b.labels.Set(0, 0, 7);  // same page, already detached
    EXPECT_EQ(b.labels.cow_stats().chunks_cloned, 1u);
  }
}

TEST(LabellingTest, ResidentBytesDeduplicatesSharedPages) {
  auto b = BuildAll(testing_util::SmallRoadNetwork(12, 21), 21);
  std::unordered_set<const void*> seen;
  const uint64_t solo = b.labels.AddResidentBytes(&seen);
  EXPECT_GT(solo, b.labels.TotalEntries() * sizeof(Weight));
  Labelling copy = b.labels;
  const uint64_t extra = copy.AddResidentBytes(&seen);
  EXPECT_LT(extra, solo / 4);  // only the per-copy pointer tables
  b.labels.Set(0, 0, 99);      // detach one page
  std::unordered_set<const void*> seen2;
  uint64_t both = b.labels.AddResidentBytes(&seen2);
  both += copy.AddResidentBytes(&seen2);
  EXPECT_GT(both, solo);
  EXPECT_LT(both, 2 * solo);
}

// SIMD vs. scalar equivalence on adversarial labels: lengths crossing
// every vector-width boundary and entries at/near kInfDistance (the
// saturation band of Equation 3's reduction).
TEST(LabellingTest, MinPlusReduceMatchesScalarOnAdversarialInputs) {
  Rng rng(23);
  const Weight interesting[] = {0,
                                1,
                                2,
                                7,
                                kInfDistance - 2,
                                kInfDistance - 1,
                                kInfDistance};
  for (uint32_t k = 0; k <= 70; ++k) {
    for (int variant = 0; variant < 8; ++variant) {
      std::vector<Weight> a(k), b(k);
      for (uint32_t i = 0; i < k; ++i) {
        if (variant < 4) {
          a[i] = interesting[rng.NextBounded(std::size(interesting))];
          b[i] = interesting[rng.NextBounded(std::size(interesting))];
        } else {
          a[i] = static_cast<Weight>(rng.NextBounded(kInfDistance + 1));
          b[i] = static_cast<Weight>(rng.NextBounded(kInfDistance + 1));
        }
      }
      // Plant the unique minimum at a specific position so a dropped
      // lane or bad tail handling cannot go unnoticed.
      if (k > 0 && variant % 2 == 1) {
        uint32_t pos = static_cast<uint32_t>(rng.NextBounded(k));
        a[pos] = 0;
        b[pos] = static_cast<Weight>(rng.NextBounded(5));
      }
      ASSERT_EQ(MinPlusReduce(a.data(), b.data(), k),
                MinPlusReduceScalar(a.data(), b.data(), k))
          << "k=" << k << " variant=" << variant
          << " avx2=" << MinPlusReduceUsesAvx2();
    }
  }
  // k == 0 returns the out-of-band sentinel both ways.
  EXPECT_EQ(MinPlusReduce(nullptr, nullptr, 0),
            kInfDistance + kInfDistance);
}

// Same equivalence for the gathered shape (H2H's position-array scan):
// arbitrary index permutations with repeats, entries in the saturation
// band, lengths crossing every vector-width boundary.
TEST(LabellingTest, MinPlusGatherReduceMatchesScalarOnAdversarialInputs) {
  Rng rng(29);
  const uint32_t pool = 97;  // gather source array length
  std::vector<Weight> a(pool), b(pool);
  for (uint32_t i = 0; i < pool; ++i) {
    a[i] = static_cast<Weight>(rng.NextBounded(kInfDistance + 1));
    b[i] = static_cast<Weight>(rng.NextBounded(kInfDistance + 1));
  }
  a[13] = kInfDistance;
  b[13] = kInfDistance;  // wrap band: sum exceeds kInfDistance
  for (uint32_t k = 0; k <= 70; ++k) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<uint32_t> idx(k);
      for (uint32_t p = 0; p < k; ++p) {
        idx[p] = static_cast<uint32_t>(rng.NextBounded(pool));
      }
      if (k > 0 && variant % 2 == 1) {
        // Plant the unique minimum at one gathered position.
        uint32_t pos = static_cast<uint32_t>(rng.NextBounded(k));
        a[idx[pos]] = 0;
        b[idx[pos]] = static_cast<Weight>(rng.NextBounded(5));
      }
      ASSERT_EQ(MinPlusGatherReduce(a.data(), b.data(), idx.data(), k),
                MinPlusGatherReduceScalar(a.data(), b.data(), idx.data(), k))
          << "k=" << k << " variant=" << variant
          << " avx2=" << MinPlusReduceUsesAvx2();
    }
  }
  EXPECT_EQ(MinPlusGatherReduce(nullptr, nullptr, nullptr, 0),
            kInfDistance + kInfDistance);
}

TEST(LabellingTest, QueryDistanceAgreesWithScalarReduction) {
  // End-to-end: the dispatched reduction inside QueryDistance returns
  // exactly what a scalar recomputation over the same labels gives.
  auto b = BuildAll(testing_util::SmallRoadNetwork(14, 27), 27);
  Rng rng(27);
  for (int i = 0; i < 500; ++i) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
    Vertex t = static_cast<Vertex>(rng.NextBounded(b.g.NumVertices()));
    if (s == t) continue;
    const uint32_t k = b.h.CommonAncestorCount(s, t);
    const Weight scalar =
        MinPlusReduceScalar(b.labels.Data(s), b.labels.Data(t), k);
    const Weight want = scalar >= kInfDistance ? kInfDistance : scalar;
    ASSERT_EQ(QueryDistance(b.h, b.labels, s, t), want);
  }
}

TEST(LabellingTest, SaturatingAdd) {
  EXPECT_EQ(SaturatingAdd(1, 2), 3u);
  EXPECT_EQ(SaturatingAdd(kInfDistance, 5), kInfDistance);
  EXPECT_EQ(SaturatingAdd(kInfDistance, kInfDistance), kInfDistance);
  EXPECT_EQ(SaturatingAdd(kInfDistance - 1, 0), kInfDistance - 1);
  EXPECT_EQ(SaturatingAdd(kInfDistance - 1, 1), kInfDistance);
}

}  // namespace
}  // namespace stl
