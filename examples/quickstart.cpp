// Quickstart: build an STL index over a small road network, answer
// distance queries, apply traffic updates, and persist the index.
//
//   $ ./quickstart
#include <cstdio>

#include "core/stl_index.h"
#include "graph/generators.h"

using namespace stl;

int main() {
  // 1. A road network. Real applications load DIMACS files with
  //    ReadDimacs(); here we generate a synthetic city.
  RoadNetworkOptions net;
  net.width = 48;
  net.height = 48;
  net.seed = 2025;
  Graph g = GenerateRoadNetwork(net);
  std::printf("network: %u intersections, %u road segments\n",
              g.NumVertices(), g.NumEdges());

  // 2. Build the Stable Tree Labelling index (beta = 0.2, as in the
  //    paper's experiments).
  StlIndex index = StlIndex::Build(&g, HierarchyOptions{});
  std::printf("index built in %.3f s: %llu label entries, height %u, "
              "%.2f MB\n",
              index.build_info().total_seconds,
              static_cast<unsigned long long>(
                  index.hierarchy().TotalLabelEntries()),
              index.hierarchy().MaxLabelSize(),
              index.MemoryBytes() / 1048576.0);

  // 3. Distance queries (Equation 3): microseconds, exact.
  Vertex s = 0, t = g.NumVertices() - 1;
  std::printf("d(%u, %u) = %u\n", s, t, index.Query(s, t));

  // 4. Traffic: a road on the current best route slows down (weight
  //    increase), then recovers (decrease). The index maintains itself
  //    with Pareto Search by default; Label Search is a one-line switch.
  std::vector<Vertex> route = index.QueryShortestPath(s, t);
  EdgeId road = *g.FindEdge(route[route.size() / 2],
                            route[route.size() / 2 + 1]);
  Weight before = g.EdgeWeight(road);
  index.ApplyUpdate(WeightUpdate{road, before, before * 4});
  std::printf("after congestion on edge %u: d(%u, %u) = %u\n", road, s, t,
              index.Query(s, t));
  index.ApplyUpdate(WeightUpdate{road, before * 4, before},
                    MaintenanceStrategy::kLabelSearch);
  std::printf("after recovery:              d(%u, %u) = %u\n", s, t,
              index.Query(s, t));

  // 5. Not just distances: reconstruct an actual shortest path.
  std::vector<Vertex> path = index.QueryShortestPath(s, t);
  std::printf("shortest path has %zu intersections: %u", path.size(),
              path.front());
  for (size_t i = 1; i < path.size() && i < 6; ++i) {
    std::printf(" -> %u", path[i]);
  }
  std::printf("%s\n", path.size() > 6 ? " -> ..." : "");

  // 6. Persist and reload.
  const char* index_file = "/tmp/quickstart.stl";
  Status save = index.Save(index_file);
  if (!save.ok()) {
    std::printf("save failed: %s\n", save.ToString().c_str());
    return 1;
  }
  Result<StlIndex> loaded = StlIndex::Load(&g, index_file);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded index agrees: d(%u, %u) = %u\n", s, t,
              loaded.value().Query(s, t));
  return 0;
}
