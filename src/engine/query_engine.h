// Concurrent query-serving engine over an StlIndex.
//
// Architecture (the serving/maintenance split of Section 1's "dynamic
// road network" setting, engineered for concurrency):
//
//   readers (ThreadPool)              single writer thread
//   ─────────────────────             ─────────────────────────────
//   load current snapshot  ◄───────┐  accumulate EnqueueUpdate()s
//   answer from its labels         │  coalesce into a distinct-edge
//   (pure const reads, never       │  batch, pick MaintenanceStrategy,
//    blocked by maintenance)       │  ApplyBatch on the master index,
//                                  └─ publish a new EngineSnapshot
//
// Epoch-versioned snapshots: every published EngineSnapshot is immutable.
// The stable tree hierarchy is shared across all epochs because — the
// paper's central property — weight updates never change it. Graph
// weights and labels are shared *structurally*: both are stored in
// copy-on-write pages/chunks (core/labelling.h, graph/graph.h), so
// publishing an epoch copies page pointers, not entries, and the writer
// clones only the pages the maintenance batch actually dirtied. Publish
// cost is therefore O(touched pages) — the in-memory mirror of the
// paper's bounded blast radius — instead of O(index size); snapshot
// stats record exactly how many pages each epoch detached. Publication
// is a single atomic shared_ptr store; a query holds its snapshot alive
// via shared_ptr for exactly as long as it runs, so the writer never
// waits for readers and readers never observe a half-applied batch.
// (EngineOptions::flat_publish restores the old deep-copy-per-epoch
// behaviour as a benchmark baseline.)
//
// Consistency contract: a query submitted at time t is answered from
// some epoch published at or after the epoch current at t; the answer is
// exact for that epoch's weights (verified against Dijkstra in
// tests/engine_test.cc and bench_engine_throughput).
#ifndef STL_ENGINE_QUERY_ENGINE_H_
#define STL_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/stl_index.h"
#include "engine/latency_histogram.h"
#include "engine/thread_pool.h"
#include "graph/updates.h"
#include "util/timer.h"
#include "workload/query_workload.h"

namespace stl {

/// One immutable published version of the index. Snapshots share the
/// stable tree hierarchy, and (unless flat_publish) share label pages
/// and graph weight chunks copy-on-write with neighbouring epochs.
struct EngineSnapshot {
  uint64_t epoch = 0;
  Graph graph;  // weights as of this epoch
  std::shared_ptr<const TreeHierarchy> hierarchy;
  Labelling labels;
  // CoW work that isolated this epoch from the previous one: label pages
  // detached by the producing maintenance batch, and total bytes cloned
  // (label pages + graph weight chunks). Zero for epoch 0.
  uint64_t label_pages_cloned = 0;
  uint64_t cow_bytes_cloned = 0;

  Weight Query(Vertex s, Vertex t) const {
    return QueryDistance(*hierarchy, labels, s, t);
  }
  std::vector<Vertex> QueryShortestPath(Vertex s, Vertex t) const {
    return QueryPath(graph, *hierarchy, labels, s, t);
  }
};

/// Answer to one submitted query.
struct QueryResult {
  Weight distance = kInfDistance;
  uint64_t epoch = 0;
  double latency_micros = 0;  // submit-to-completion (queue wait included)
  // The snapshot the query was served from; lets callers audit the
  // answer against the exact weights of that epoch.
  std::shared_ptr<const EngineSnapshot> snapshot;
};

/// How the writer picks the maintenance algorithm per batch.
enum class StrategyMode {
  kAlwaysParetoSearch,  // STL-P for every batch
  kAlwaysLabelSearch,   // STL-L for every batch
  // Per-batch choice: Label Search amortizes its per-ancestor searches
  // over large batches (Table 3); Pareto Search wins on small ones.
  kAuto,
};

struct EngineOptions {
  int num_query_threads = 4;
  /// Updates taken from the pending queue per epoch (larger batches mean
  /// fewer snapshot publishes but staler reads).
  size_t max_batch_size = 128;
  StrategyMode strategy = StrategyMode::kAuto;
  /// kAuto: batches with at least this many effective updates use Label
  /// Search.
  size_t auto_label_search_threshold = 16;
  /// Benchmark baseline: publish every epoch as a full deep copy of the
  /// graph weights and labels (the pre-CoW behaviour) instead of a
  /// structural share. Keep false outside bench_snapshot_publish.
  bool flat_publish = false;
};

/// Point-in-time engine counters and latency summary.
struct EngineStats {
  uint64_t queries_served = 0;
  uint64_t updates_enqueued = 0;
  uint64_t updates_applied = 0;    // effective updates (after coalescing)
  uint64_t updates_coalesced = 0;  // duplicates / no-ops dropped
  uint64_t epochs_published = 0;
  uint64_t batches_pareto = 0;
  uint64_t batches_label = 0;
  // Copy-on-write publish economics. cow_bytes_cloned counts bytes of
  // label pages + graph weight chunks detached by maintenance (the true
  // per-epoch copy cost under structural sharing);
  // publish_bytes_deep_copied counts bytes copied by flat_publish
  // baseline publishes (0 in CoW mode).
  uint64_t label_pages_cloned = 0;
  uint64_t graph_chunks_cloned = 0;
  uint64_t cow_bytes_cloned = 0;
  uint64_t publish_bytes_deep_copied = 0;
  double publish_total_micros = 0;  // time inside PublishSnapshot
  // Actual resident bytes of the serving state (current snapshot +
  // shared hierarchy), with every shared physical page/chunk counted
  // exactly once (Table-4-style honest memory under page sharing). The
  // master index shares all but its not-yet-published dirty pages with
  // the snapshot, so those appear here after the next publish.
  uint64_t resident_index_bytes = 0;
  double wall_seconds = 0;
  double queries_per_second = 0;
  double latency_mean_micros = 0;
  double latency_p50_micros = 0;
  double latency_p99_micros = 0;
  double latency_max_micros = 0;
};

/// Concurrent query-serving engine. Thread-safe: Submit/SubmitBatch/
/// EnqueueUpdate/Flush/Stats may be called from any thread.
class QueryEngine {
 public:
  /// Takes ownership of the graph, builds the index, starts the workers,
  /// and publishes epoch 0.
  QueryEngine(Graph graph, const HierarchyOptions& hierarchy_options,
              const EngineOptions& options = {});

  /// Drains: answers every submitted query and applies every enqueued
  /// update before returning.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Schedules one distance query; the future resolves when a reader
  /// thread has answered it.
  std::future<QueryResult> Submit(QueryPair query);

  /// Schedules many queries (one future each).
  std::vector<std::future<QueryResult>> SubmitBatch(
      const std::vector<QueryPair>& queries);

  /// Records a desired new weight for an edge. The writer re-resolves
  /// the old weight from the master graph at apply time, so callers need
  /// not know the current weight (update.old_weight is ignored).
  void EnqueueUpdate(const WeightUpdate& update);
  void EnqueueUpdate(EdgeId edge, Weight new_weight);

  /// Enqueues many updates atomically (one lock, one writer wakeup): the
  /// writer cannot pop a partial prefix, so up to max_batch_size of them
  /// land in the same maintenance batch / epoch.
  void EnqueueUpdates(const std::vector<WeightUpdate>& updates);

  /// Blocks until every update enqueued before the call has been applied
  /// and, if it changed any weight, published in a snapshot.
  void Flush();

  /// The latest published snapshot (never null after construction).
  std::shared_ptr<const EngineSnapshot> CurrentSnapshot() const {
    return current_.load(std::memory_order_acquire);
  }

  uint64_t CurrentEpoch() const { return CurrentSnapshot()->epoch; }

  EngineStats Stats() const;

  /// Zeroes counters (except the epoch allocator) and the latency
  /// histogram and restarts the wall clock (for bench warmup). Call only
  /// while no queries are in flight.
  void ResetStats();

  int num_query_threads() const { return pool_.num_threads(); }

 private:
  void WriterLoop();
  /// Publishes the master index state as epoch `epoch`. Called only by
  /// the writer thread (or the constructor, before concurrency starts).
  void PublishSnapshot(uint64_t epoch);

  const EngineOptions options_;

  // Master state, owned by the writer after construction (no other
  // thread reads it: queries and Stats() work off published snapshots).
  // graph_ is heap-allocated so its address stays stable for the
  // index's non-owning pointer.
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<StlIndex> index_;
  std::shared_ptr<const TreeHierarchy> hierarchy_;  // shared by snapshots

  std::atomic<std::shared_ptr<const EngineSnapshot>> current_;

  // Pending-update queue (writer input).
  struct PendingUpdate {
    EdgeId edge;
    Weight new_weight;
  };
  mutable std::mutex update_mu_;
  std::condition_variable update_cv_;  // writer wakeup
  std::condition_variable flush_cv_;   // Flush() wakeup
  std::deque<PendingUpdate> pending_;
  uint64_t enqueue_seq_ = 0;  // updates ever enqueued
  uint64_t applied_seq_ = 0;  // updates taken and fully applied
  bool stop_writer_ = false;

  std::thread writer_;

  // Last-harvested cumulative CoW counters of the master labelling and
  // graph; only the publishing thread touches these, so per-epoch deltas
  // need no synchronization.
  uint64_t harvested_label_pages_ = 0;
  uint64_t harvested_label_bytes_ = 0;
  uint64_t harvested_graph_chunks_ = 0;
  uint64_t harvested_graph_bytes_ = 0;

  // Serving-side stats (relaxed atomics: monitoring, not coordination).
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> updates_coalesced_{0};
  std::atomic<uint64_t> epochs_published_{0};
  std::atomic<uint64_t> batches_pareto_{0};
  std::atomic<uint64_t> batches_label_{0};
  std::atomic<uint64_t> label_pages_cloned_{0};
  std::atomic<uint64_t> graph_chunks_cloned_{0};
  std::atomic<uint64_t> cow_bytes_cloned_{0};
  std::atomic<uint64_t> publish_bytes_deep_copied_{0};
  std::atomic<uint64_t> publish_nanos_{0};
  LatencyHistogram latency_;
  Timer wall_;

  ThreadPool pool_;  // last member: workers die before state they touch
};

}  // namespace stl

#endif  // STL_ENGINE_QUERY_ENGINE_H_
