#include "engine/sharded_engine.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "partition/cells.h"
#include "util/logging.h"
#include "util/simd.h"

namespace stl {

namespace {

/// Saturates the three-term routing sums back into the Weight range.
inline Weight ClampInf(uint64_t d) {
  return d >= kInfDistance ? kInfDistance
                           : static_cast<Weight>(d);
}

/// Fills `out` with the shard-local distances from global vertex
/// `global` (owned by shard `shard`) to that shard's boundary set S_i;
/// returns the row width |S_i|. kInfDistance where the shard subgraph
/// disconnects them.
uint32_t FillBoundaryRow(const ShardedSnapshot& snap, uint32_t shard,
                         Vertex global, std::vector<Weight>* out) {
  const ShardLayout& lay = *snap.layout;
  const ShardLayout::Shard& sh = lay.shards[shard];
  const uint32_t width = static_cast<uint32_t>(sh.boundary_local.size());
  out->resize(width);
  const Vertex local = lay.local_of_vertex[global];
  const IndexView& view = *snap.shards[shard]->view;
  for (uint32_t i = 0; i < width; ++i) {
    (*out)[i] = view.Query(local, sh.boundary_local[i]);
  }
  return width;
}

// Per-chunk scratch for batched routing: memoises the ds/dt
// boundary-distance rows per endpoint, plus the shared inner vector
// min_{b2} D[b1][b2] + dt[b2] of the CURRENT (source cell, target
// cell, target) group. Chunks route in BatchSortKey order, so a
// group's queries are adjacent and one cached vector covers them —
// full-width keys, no packing, no collision hazard. Valid for exactly
// one snapshot (the batch's pinned epoch).
struct BatchRouteScratch {
  // Global vertex -> its shard-local boundary-distance row. Node-based
  // map: references stay valid across later insertions.
  std::unordered_map<Vertex, std::vector<Weight>> rows;
  // The last group's inner vector (over S_{inner_cs}).
  uint64_t inner_cs = ~uint64_t{0};
  uint64_t inner_ct = ~uint64_t{0};
  Vertex inner_t = 0;
  std::vector<Weight> inner;

  const std::vector<Weight>& Row(const ShardedSnapshot& snap,
                                 uint32_t shard, Vertex v) {
    auto [it, fresh] = rows.try_emplace(v);
    if (fresh) FillBoundaryRow(snap, shard, v, &it->second);
    return it->second;
  }

  const std::vector<Weight>& Inner(const ShardedSnapshot& snap,
                                   uint32_t cs, uint32_t ct, Vertex t) {
    if (inner_cs != cs || inner_ct != ct || inner_t != t) {
      inner_cs = cs;
      inner_ct = ct;
      inner_t = t;
      const std::vector<Weight>& dt = Row(snap, ct, t);
      const ShardLayout::Shard& sshard = snap.layout->shards[cs];
      inner.resize(sshard.boundary_pos.size());
      // The packed-row batch entry point: one SIMD min-plus per b1 row
      // of shard ct's packed block (index/overlay.h).
      snap.overlay->MinPlusRowsInto(
          ct, sshard.boundary_pos.data(),
          static_cast<uint32_t>(sshard.boundary_pos.size()), dt.data(),
          inner.data());
    }
    return inner;
  }
};

/// The batched router: identical minima (and identical arithmetic
/// ranges) to ShardedSnapshot::Query, with the ds/dt rows and the
/// per-group inner vectors coming from the scratch memo — answers are
/// bit-identical to the per-query path on the same snapshot.
Weight RouteBatched(const ShardedSnapshot& snap, Vertex s, Vertex t,
                    BatchRouteScratch* scratch) {
  const ShardLayout& lay = *snap.layout;
  STL_DCHECK(s < lay.shard_of_vertex.size());
  STL_DCHECK(t < lay.shard_of_vertex.size());
  if (s == t) return 0;
  const uint32_t cs = lay.shard_of_vertex[s];
  const uint32_t ct = lay.shard_of_vertex[t];
  const bool s_boundary = cs == CellPartition::kBoundaryCell;
  const bool t_boundary = ct == CellPartition::kBoundaryCell;

  if (s_boundary && t_boundary) {
    return snap.overlay->At(lay.boundary_pos_of_vertex[s],
                            lay.boundary_pos_of_vertex[t]);
  }

  uint64_t best = kInfDistance;
  if (!s_boundary && !t_boundary && cs == ct) {
    best = snap.shards[cs]->view->Query(lay.local_of_vertex[s],
                                        lay.local_of_vertex[t]);
  }

  if (s_boundary) {
    const std::vector<Weight>& dt = scratch->Row(snap, ct, t);
    const uint32_t pos = lay.boundary_pos_of_vertex[s];
    best = std::min<uint64_t>(
        best, MinPlusReduce(snap.overlay->PackedRow(ct, pos), dt.data(),
                            static_cast<uint32_t>(dt.size())));
  } else if (t_boundary) {
    const std::vector<Weight>& ds = scratch->Row(snap, cs, s);
    const uint32_t pos = lay.boundary_pos_of_vertex[t];
    best = std::min<uint64_t>(
        best, MinPlusReduce(snap.overlay->PackedRow(cs, pos), ds.data(),
                            static_cast<uint32_t>(ds.size())));
  } else {
    // General case: min_i ds[i] + inner[i], where inner is shared by
    // every query of the (cs, ct, t) group. All terms are <= 3 *
    // kInfDistance, so the uint32 min-plus cannot wrap and the minimum
    // equals the per-query path's pruned double loop exactly.
    const std::vector<Weight>& ds = scratch->Row(snap, cs, s);
    const std::vector<Weight>& inner = scratch->Inner(snap, cs, ct, t);
    best = std::min<uint64_t>(
        best, MinPlusReduce(ds.data(), inner.data(),
                            static_cast<uint32_t>(ds.size())));
  }
  return ClampInf(best);
}

ServingCoreOptions CoreOptions(const ShardedEngineOptions& options) {
  ServingCoreOptions core;
  core.num_query_threads = options.num_query_threads;
  core.max_batch_size = options.max_batch_size;
  core.result_cache_entries = options.result_cache_entries;
  core.serving = options.serving;
  return core;
}

}  // namespace

uint32_t ChooseShardCount(uint32_t num_vertices,
                          double updates_per_second) {
  // Locality target from BENCH_sharded.json: cells of a few thousand
  // vertices keep per-shard repair and republish cheap while |S| (and
  // with it overlay rebuild cost) stays a small fraction of |V|. Below
  // ~2 cells' worth of vertices, sharding only adds boundary overhead.
  constexpr uint32_t kTargetCellVertices = 4096;
  constexpr uint32_t kMaxShards = 64;
  uint32_t k = num_vertices / kTargetCellVertices;
  k = std::max(k, 1u);
  k = std::min(k, kMaxShards);
  // Update pressure: every effective batch rebuilds the overlay, whose
  // per-epoch micros grow superlinearly with k in BENCH_sharded.json
  // (~4x from k=2 to k=8 on the measured grids). Halve k per decade of
  // sustained update rate beyond ~100/s — a write-heavy feed wants
  // fewer, bigger shards.
  double rate = updates_per_second;
  while (k > 1 && rate >= 100.0) {
    k = (k + 1) / 2;
    rate /= 10.0;
  }
  return k;
}

// ----------------------------------------------------- ShardedSnapshot

Weight ShardedSnapshot::Query(Vertex s, Vertex t) const {
  const ShardLayout& lay = *layout;
  STL_DCHECK(s < lay.shard_of_vertex.size());
  STL_DCHECK(t < lay.shard_of_vertex.size());
  if (s == t) return 0;
  const uint32_t cs = lay.shard_of_vertex[s];
  const uint32_t ct = lay.shard_of_vertex[t];
  const bool s_boundary = cs == CellPartition::kBoundaryCell;
  const bool t_boundary = ct == CellPartition::kBoundaryCell;

  if (s_boundary && t_boundary) {
    // The overlay table is already the exact full-graph distance.
    return overlay->At(lay.boundary_pos_of_vertex[s],
                       lay.boundary_pos_of_vertex[t]);
  }

  // Per-reader scratch for the shard-to-boundary distance arrays; sized
  // to the largest S_i seen, reused across snapshots and epochs.
  thread_local std::vector<Weight> ds_scratch;
  thread_local std::vector<Weight> dt_scratch;

  uint64_t best = kInfDistance;
  if (!s_boundary && !t_boundary && cs == ct) {
    // Same cell: the path may stay inside the shard entirely...
    best = shards[cs]->view->Query(lay.local_of_vertex[s],
                                   lay.local_of_vertex[t]);
    // ...or leave through the boundary and come back (covered below;
    // D[b][b] = 0 makes the touch-and-return case a special case of it).
  }

  if (s_boundary) {
    // First boundary vertex of any path from s is s itself:
    // min over b2 in S_ct of D[s][b2] + d_shard(b2, t).
    const uint32_t width = FillBoundaryRow(*this, ct, t, &dt_scratch);
    const uint32_t pos = lay.boundary_pos_of_vertex[s];
    best = std::min<uint64_t>(
        best, MinPlusReduce(overlay->PackedRow(ct, pos), dt_scratch.data(),
                            width));
  } else if (t_boundary) {
    // Mirror image (distances are symmetric on an undirected graph).
    const uint32_t width = FillBoundaryRow(*this, cs, s, &ds_scratch);
    const uint32_t pos = lay.boundary_pos_of_vertex[t];
    best = std::min<uint64_t>(
        best, MinPlusReduce(overlay->PackedRow(cs, pos), ds_scratch.data(),
                            width));
  } else {
    // General case: decompose at the first and last boundary vertices.
    const uint32_t sw = FillBoundaryRow(*this, cs, s, &ds_scratch);
    const uint32_t tw = FillBoundaryRow(*this, ct, t, &dt_scratch);
    const ShardLayout::Shard& sshard = lay.shards[cs];
    for (uint32_t i = 0; i < sw; ++i) {
      if (ds_scratch[i] >= kInfDistance || ds_scratch[i] >= best) continue;
      // Inner min over b2 on the packed row: contiguous SIMD min-plus.
      const Weight inner =
          MinPlusReduce(overlay->PackedRow(ct, sshard.boundary_pos[i]),
                        dt_scratch.data(), tw);
      best = std::min<uint64_t>(
          best, static_cast<uint64_t>(ds_scratch[i]) + inner);
    }
  }
  return ClampInf(best);
}

// ------------------------------------------------------- ShardedEngine

ShardedEngine::ShardedEngine(Graph graph,
                             const HierarchyOptions& hierarchy_options,
                             const ShardedEngineOptions& options)
    : options_(options), core_(&policy_, CoreOptions(options)) {
  graph_ = std::make_unique<Graph>(std::move(graph));
  const uint32_t target =
      options_.target_shards > 0
          ? options_.target_shards
          : ChooseShardCount(graph_->NumVertices(),
                             options_.expected_update_rate);
  STL_CHECK_GE(target, 1u);

  const CellPartition cells =
      PartitionCells(*graph_, target, hierarchy_options);
  ShardPlan plan = BuildShardPlan(*graph_, cells);
  layout_ = std::make_shared<const ShardLayout>(std::move(plan.layout));

  const uint32_t k = layout_->num_shards();
  states_.resize(k);
  for (uint32_t c = 0; c < k; ++c) {
    states_[c].graph =
        std::make_unique<Graph>(std::move(plan.shard_graphs[c]));
  }
  // The k master builds touch disjoint state (each only its own
  // subgraph), so build them in parallel: startup approaches the
  // slowest single shard instead of the sum.
  {
    std::vector<std::future<void>> builds;
    builds.reserve(k);
    for (uint32_t c = 0; c < k; ++c) {
      builds.push_back(std::async(std::launch::async, [&, c] {
        states_[c].index = MakeDistanceIndex(options_.backend,
                                             states_[c].graph.get(),
                                             hierarchy_options);
      }));
    }
    for (auto& b : builds) b.get();
  }
  if (k > 0) capabilities_ = states_[0].index->capabilities();
  overlay_ = std::make_unique<BoundaryOverlay>(layout_.get(), *graph_);
  shard_updates_.reset(new std::atomic<uint64_t>[std::max(k, 1u)]);
  for (uint32_t c = 0; c < k; ++c) shard_updates_[c].store(0);
  serving_.resize(k);

  // Epoch 0 baseline: clones from construction are not publish cost.
  harvested_graph_chunks_ = graph_->cow_stats().chunks_cloned;
  harvested_graph_bytes_ = graph_->cow_stats().bytes_cloned;
  core_.Start();  // publishes epoch 0, starts the writer
}

ShardedEngine::~ShardedEngine() = default;  // core_ drains first

void ShardedEngine::PublishInitialSnapshot() {
  for (uint32_t c = 0; c < layout_->num_shards(); ++c) {
    PublishInfo info;
    auto view = states_[c].index->PublishView(/*flat_publish=*/false, &info);
    overlay_->RebuildClique(c, *view);
    auto serving = std::make_shared<ShardServing>();
    serving->shard = c;
    serving->shard_epoch = 0;
    serving->view = std::move(view);
    serving_[c] = std::move(serving);
  }
  auto snap = std::make_shared<ShardedSnapshot>();
  snap->epoch = 0;
  snap->graph = *graph_;
  snap->layout = layout_;
  snap->shards = serving_;
  snap->overlay = overlay_->Publish();
  core_.Publish(std::move(snap));
}

// ---------------------------------------------------- the sharded policy

void ShardedEngine::Policy::PublishInitial() {
  engine->PublishInitialSnapshot();
}

Weight ShardedEngine::Policy::ResolveOldWeight(EdgeId e) const {
  return engine->graph_->EdgeWeight(e);
}

void ShardedEngine::Policy::ApplyBatch(const UpdateBatch& batch) {
  engine->ApplyAndPublish(batch);
}

uint32_t ShardedEngine::Policy::NumEdges() const {
  return engine->graph_->NumEdges();
}

Weight ShardedEngine::Policy::Route(const ShardedSnapshot& snap, Vertex s,
                                    Vertex t) const {
  return snap.Query(s, t);
}

uint64_t ShardedEngine::Policy::BatchSortKey(const ShardedSnapshot& snap,
                                             const QueryPair& q) const {
  // Group by (source cell, target cell, target): same-group queries
  // share the inner vector and the dt row; same-source runs share ds.
  // Boundary endpoints truncate kBoundaryCell to 0xffff — still a
  // stable group of their own.
  const ShardLayout& lay = *snap.layout;
  const uint64_t cs = lay.shard_of_vertex[q.first] & 0xffff;
  const uint64_t ct = lay.shard_of_vertex[q.second] & 0xffff;
  return (cs << 48) | (ct << 32) | q.second;
}

void ShardedEngine::Policy::RouteSpan(const ShardedSnapshot& snap,
                                      const QueryPair* queries,
                                      const uint32_t* idx, size_t count,
                                      Weight* out) const {
  BatchRouteScratch scratch;
  for (size_t j = 0; j < count; ++j) {
    const QueryPair& q = queries[idx[j]];
    out[idx[j]] = RouteBatched(snap, q.first, q.second, &scratch);
  }
}

void ShardedEngine::Policy::AugmentStats(EngineStats* s) const {
  const ShardedEngine& e = *engine;
  s->backend = e.options_.backend;
  s->num_shards = e.layout_->num_shards();
  s->boundary_vertices = e.layout_->num_boundary();
  s->overlay_republishes =
      e.overlay_republishes_.load(std::memory_order_relaxed);
  s->overlay_rebuild_micros =
      static_cast<double>(
          e.overlay_nanos_.load(std::memory_order_relaxed)) /
      1e3;
  // Honest resident memory of the serving state, wait-free: walk the
  // current (immutable) snapshot, counting each physically shared
  // block once — the per-shard rows report each shard's unique bytes.
  std::shared_ptr<const ShardedSnapshot> snap = e.CurrentSnapshot();
  std::unordered_set<const void*> seen;
  uint64_t bytes = 0;
  s->shards.reserve(e.layout_->num_shards());
  for (uint32_t c = 0; c < e.layout_->num_shards(); ++c) {
    ShardStats row;
    row.shard = c;
    row.cell_vertices = e.layout_->shards[c].num_cell_vertices;
    row.boundary_vertices =
        static_cast<uint32_t>(e.layout_->shards[c].boundary_local.size());
    row.subgraph_edges =
        static_cast<uint32_t>(e.layout_->shards[c].edge_to_global.size());
    row.shard_epoch = snap->shards[c]->shard_epoch;
    row.updates_applied =
        e.shard_updates_[c].load(std::memory_order_relaxed);
    row.resident_bytes = snap->shards[c]->view->AddResidentBytes(&seen);
    bytes += row.resident_bytes;
    s->shards.push_back(row);
  }
  if (snap->overlay != nullptr &&
      seen.insert(snap->overlay.get()).second) {
    bytes += snap->overlay->MemoryBytes();
  }
  bytes += snap->graph.AddResidentBytes(&seen);
  if (seen.insert(e.layout_.get()).second) {
    bytes += e.layout_->MemoryBytes();
  }
  s->resident_index_bytes = bytes;
}

// ------------------------------------------------- submission forwards

std::future<ShardedQueryResult> ShardedEngine::Submit(QueryPair query,
                                                      Deadline deadline) {
  return core_.Submit(query, deadline);
}

ShardedEngine::Ticket ShardedEngine::SubmitBatch(
    const std::vector<QueryPair>& queries, Deadline deadline) {
  return core_.SubmitBatch(queries, deadline);
}

void ShardedEngine::SubmitTagged(QueryPair query, uint64_t tag,
                                 CompletionSink* sink, Deadline deadline) {
  core_.SubmitTagged(query, tag, sink, deadline);
}

ShardedEngine::Ticket ShardedEngine::SubmitBatchTagged(
    const std::vector<QueryPair>& queries,
    const std::vector<uint64_t>& tags, CompletionSink* sink,
    Deadline deadline) {
  return core_.SubmitBatchTagged(queries, tags, sink, deadline);
}

void ShardedEngine::EnqueueUpdate(const WeightUpdate& update) {
  core_.EnqueueUpdate(update.edge, update.new_weight);
}

void ShardedEngine::EnqueueUpdate(EdgeId edge, Weight new_weight) {
  core_.EnqueueUpdate(edge, new_weight);
}

void ShardedEngine::EnqueueUpdates(const std::vector<WeightUpdate>& updates) {
  core_.EnqueueUpdates(updates);
}

void ShardedEngine::Flush() { core_.Flush(); }

std::shared_ptr<const ShardedSnapshot> ShardedEngine::CurrentSnapshot()
    const {
  return core_.CurrentSnapshot();
}

int ShardedEngine::num_query_threads() const {
  return core_.num_query_threads();
}

// --------------------------------------------------- writer apply step

void ShardedEngine::ApplyAndPublish(const UpdateBatch& batch) {
  ServingCounters& counters = core_.counters();
  const uint32_t k = layout_->num_shards();
  // Partition the batch by owning cell; S–S edges go to the overlay.
  std::vector<UpdateBatch> per_shard(k);
  for (const WeightUpdate& u : batch) {
    graph_->SetEdgeWeight(u.edge, u.new_weight);
    const uint32_t owner = layout_->shard_of_edge[u.edge];
    const uint32_t slot = layout_->local_of_edge[u.edge];
    if (owner == ShardLayout::kOverlayShard) {
      overlay_->SetDirectWeight(slot, u.new_weight);
    } else {
      per_shard[owner].push_back(
          WeightUpdate{slot, states_[owner].graph->EdgeWeight(slot),
                       u.new_weight});
    }
  }

  // Maintenance: repair (or rebuild) only the dirtied shards. The
  // STL-P/STL-L choice is made per SHARD batch — each shard amortizes
  // over its own share of the updates.
  for (uint32_t c = 0; c < k; ++c) {
    if (per_shard[c].empty()) continue;
    const MaintenanceStrategy strategy =
        ChooseStrategy(options_.strategy,
                       options_.auto_label_search_threshold,
                       per_shard[c].size());
    counters.batch_counters.Count(
        states_[c].index->ApplyBatch(per_shard[c], strategy));
    shard_updates_[c].fetch_add(per_shard[c].size(),
                                std::memory_order_relaxed);
  }
  counters.updates_applied.fetch_add(batch.size(),
                                     std::memory_order_relaxed);

  // Publication: new views + cliques for dirty shards only, then one
  // overlay rebuild, then the snapshot swap. Clean shards' ShardServing
  // pointers carry over unchanged.
  Timer publish_timer;
  for (uint32_t c = 0; c < k; ++c) {
    if (per_shard[c].empty()) continue;
    PublishInfo info;
    auto view = states_[c].index->PublishView(/*flat_publish=*/false, &info);
    counters.label_pages_cloned.fetch_add(info.label_pages_cloned,
                                          std::memory_order_relaxed);
    counters.cow_bytes_cloned.fetch_add(info.label_bytes_cloned,
                                        std::memory_order_relaxed);
    counters.publish_bytes_deep_copied.fetch_add(
        info.deep_bytes_copied, std::memory_order_relaxed);
    auto serving = std::make_shared<ShardServing>();
    serving->shard = c;
    serving->shard_epoch = ++states_[c].shard_epoch;
    serving->view = std::move(view);
    Timer overlay_timer;
    overlay_->RebuildClique(c, *serving->view);
    overlay_nanos_.fetch_add(overlay_timer.ElapsedNanos(),
                             std::memory_order_relaxed);
    serving_[c] = std::move(serving);
  }
  Timer overlay_timer;
  auto table = overlay_->Publish();
  overlay_nanos_.fetch_add(overlay_timer.ElapsedNanos(),
                           std::memory_order_relaxed);
  overlay_republishes_.fetch_add(1, std::memory_order_relaxed);

  // Graph-side CoW accounting (chunks detached by this batch's writes).
  const CowChunkStats gc = graph_->cow_stats();
  counters.graph_chunks_cloned.fetch_add(
      gc.chunks_cloned - harvested_graph_chunks_,
      std::memory_order_relaxed);
  counters.cow_bytes_cloned.fetch_add(
      gc.bytes_cloned - harvested_graph_bytes_, std::memory_order_relaxed);
  harvested_graph_chunks_ = gc.chunks_cloned;
  harvested_graph_bytes_ = gc.bytes_cloned;

  auto snap = std::make_shared<ShardedSnapshot>();
  snap->epoch =
      counters.epochs_published.fetch_add(1, std::memory_order_relaxed) + 1;
  snap->graph = *graph_;  // structural chunk share
  snap->layout = layout_;
  snap->shards = serving_;
  snap->overlay = std::move(table);
  counters.publish_nanos.fetch_add(publish_timer.ElapsedNanos(),
                                   std::memory_order_relaxed);
  core_.Publish(std::move(snap));
}

EngineStats ShardedEngine::Stats() const { return core_.Stats(); }

void ShardedEngine::ResetStats() {
  core_.ResetStats();
  // The per-shard ShardState epochs keep snapshot lineage; they do not
  // reset (mirroring the global epoch allocator).
  overlay_nanos_.store(0, std::memory_order_relaxed);
  overlay_republishes_.store(0, std::memory_order_relaxed);
  for (uint32_t c = 0; c < layout_->num_shards(); ++c) {
    shard_updates_[c].store(0, std::memory_order_relaxed);
  }
}

}  // namespace stl
