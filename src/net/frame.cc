#include "net/frame.h"

#include <cstring>

#include "util/logging.h"

namespace stl {

void EncodeFrame(uint64_t tag, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out) {
  const uint32_t body =
      static_cast<uint32_t>(kFrameTagBytes + payload.size());
  STL_CHECK(payload.size() <= kMaxFrameBody - kFrameTagBytes);
  const size_t base = out->size();
  out->resize(base + kFrameLenBytes + body);
  std::memcpy(out->data() + base, &body, kFrameLenBytes);
  std::memcpy(out->data() + base + kFrameLenBytes, &tag, kFrameTagBytes);
  if (!payload.empty()) {
    std::memcpy(out->data() + base + kFrameLenBytes + kFrameTagBytes,
                payload.data(), payload.size());
  }
}

Status DecodeFrame(const uint8_t* data, size_t size, WireFrame* frame,
                   size_t* consumed) {
  *consumed = 0;
  if (size < kFrameLenBytes) {
    return Status::Unavailable("frame: length prefix incomplete");
  }
  uint32_t body = 0;
  std::memcpy(&body, data, kFrameLenBytes);
  if (body < kFrameTagBytes || body > kMaxFrameBody) {
    return Status::Corruption("frame: implausible length prefix");
  }
  if (size < kFrameLenBytes + body) {
    return Status::Unavailable("frame: body incomplete");
  }
  std::memcpy(&frame->tag, data + kFrameLenBytes, kFrameTagBytes);
  frame->payload.assign(data + kFrameLenBytes + kFrameTagBytes,
                        data + kFrameLenBytes + body);
  *consumed = kFrameLenBytes + body;
  return Status::OK();
}

}  // namespace stl
