#include "dist/wire.h"

namespace stl {

std::vector<uint8_t> ShardRequest::Encode() const {
  WireWriter w(kWireMagic, kWireVersion);
  w.WritePod(static_cast<uint32_t>(kind));
  w.WritePod(shard);
  w.WritePod(shard_epoch);
  w.WritePod(u);
  w.WritePod(v);
  return w.Take();
}

Status ShardRequest::Decode(const uint8_t* data, size_t size,
                            ShardRequest* out) {
  WireReader r(data, size);
  Status s = r.ReadHeader(kWireMagic, kWireVersion);
  if (!s.ok()) return s;
  uint32_t kind = 0;
  if (!(s = r.ReadPod(&kind)).ok()) return s;
  if (kind != static_cast<uint32_t>(WireKind::kBoundaryRow) &&
      kind != static_cast<uint32_t>(WireKind::kPointQuery)) {
    return Status::Corruption("wire: unknown request kind");
  }
  out->kind = static_cast<WireKind>(kind);
  if (!(s = r.ReadPod(&out->shard)).ok()) return s;
  if (!(s = r.ReadPod(&out->shard_epoch)).ok()) return s;
  if (!(s = r.ReadPod(&out->u)).ok()) return s;
  if (!(s = r.ReadPod(&out->v)).ok()) return s;
  if (r.remaining() != 0) {
    return Status::Corruption("wire: trailing bytes after request");
  }
  return Status::OK();
}

std::vector<uint8_t> ShardResponse::Encode() const {
  WireWriter w(kWireMagic, kWireVersion);
  w.WritePod(static_cast<uint32_t>(code));
  w.WritePod(shard);
  w.WritePod(shard_epoch);
  w.WritePod(distance);
  w.WriteVector(row);
  return w.Take();
}

Status ShardResponse::Decode(const uint8_t* data, size_t size,
                             ShardResponse* out) {
  WireReader r(data, size);
  Status s = r.ReadHeader(kWireMagic, kWireVersion);
  if (!s.ok()) return s;
  uint32_t code = 0;
  if (!(s = r.ReadPod(&code)).ok()) return s;
  if (code != static_cast<uint32_t>(StatusCode::kOk) &&
      code != static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("wire: unexpected response code");
  }
  out->code = static_cast<StatusCode>(code);
  if (!(s = r.ReadPod(&out->shard)).ok()) return s;
  if (!(s = r.ReadPod(&out->shard_epoch)).ok()) return s;
  if (!(s = r.ReadPod(&out->distance)).ok()) return s;
  if (!(s = r.ReadVector(&out->row)).ok()) return s;
  if (r.remaining() != 0) {
    return Status::Corruption("wire: trailing bytes after response");
  }
  return Status::OK();
}

}  // namespace stl
