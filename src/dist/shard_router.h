// The replicated shard-router tier: ShardedEngine's Submit/SubmitBatch/
// SubmitTagged surface served by fanning per-cell boundary-row fetches
// and intra-cell point queries out to N interchangeable shard replicas
// over a pluggable Transport, with the overlay min-plus reduction run
// router-side on the fetched rows.
//
//   callers          ShardRouter (ServingCore<RouterPolicy>)
//   ─────────────    ────────────────────────────────────────────────
//   Submit*          pin ONE ShardedSnapshot; for each query fetch the
//                    endpoint ds/dt rows from a replica (pinning each
//                    shard's shard_epoch on the wire), reduce through
//                    the pinned epoch's OverlayTable min-plus kernels
//
//   updates          router writer -> inner ShardedEngine (the
//                    authoritative writer tier) -> new snapshot is
//                    installed on every replica, THEN published to the
//                    router's readers — a reader can never pin an
//                    epoch no replica holds yet
//
// Epoch-consistent fan-out is the hard invariant: a batch pins one
// snapshot, every row request carries that snapshot's per-shard
// shard_epoch, and a replica that does not hold the pinned version
// answers kUnavailable instead of a different epoch's bytes. The
// router then retries the sibling replicas (round-robin start, all N
// tried); only when every replica fails does the query complete with
// a typed kUnavailable — delivered exactly once per user tag through
// the same one-shot-claim completion machinery as every other serving
// path.
//
// Bit-identity (the conformance contract, tests/router_test.cc and
// bench_router_fanout --check): replica-served rows are computed by
// the same FillShardBoundaryRow on the same immutable shard views the
// in-process engine reads, and the router's reduction is the same
// MinPlusReduce/MinPlusRowsInto arithmetic on the same pinned overlay
// — so every routed answer is byte-identical to ShardedEngine on the
// same epoch.
#ifndef STL_DIST_SHARD_ROUTER_H_
#define STL_DIST_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dist/loopback_transport.h"
#include "dist/replica.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "engine/sharded_engine.h"

namespace stl {

/// Construction options for the router tier.
struct ShardRouterOptions {
  /// The inner authoritative engine (writer tier): partitioning,
  /// per-shard backend, maintenance strategy. Its serving-side knobs
  /// (threads, caches) apply to the inner engine only; the router has
  /// its own below.
  ShardedEngineOptions engine;
  /// Router reader threads (the tier that fans queries out).
  int num_query_threads = 4;
  /// Updates taken per router epoch (forwarded to the inner writer in
  /// one atomic enqueue, so they land in few inner epochs).
  size_t max_batch_size = 128;
  /// Router-side epoch-keyed (s, t) result memo; 0 disables it.
  size_t result_cache_entries = 0;
  /// Overload-hardening knobs of the ROUTER core (admission, deadlines,
  /// watchdog, drain, fault hooks). The transport fault sites fire in
  /// the transport itself (LoopbackTransport's injector), not here.
  ServingOptions serving;
};

/// Router-tier counters: the router core's serving stats plus the RPC
/// fan-out accounting.
struct RouterStats {
  /// The router core's serving-side stats (queries served/unavailable,
  /// latency quantiles, cache rates; epochs_published counts router
  /// publishes).
  EngineStats serving;
  /// Replica endpoints the transport reaches.
  uint32_t replicas = 0;
  /// RPC attempts sent (every Send, including retries).
  uint64_t rpcs_sent = 0;
  /// RPC attempts beyond the first for their fetch (sibling retries).
  uint64_t rpc_retries = 0;
  /// Replica answers rejected for not holding the pinned shard_epoch
  /// (or failing/corrupt), each triggering a sibling retry.
  uint64_t rpc_stale_responses = 0;
  /// Fetches that succeeded on a sibling after at least one failed
  /// attempt (the failover path working as designed).
  uint64_t rpc_failovers = 0;
  /// Responses delivered under an already-settled tag (transport
  /// duplicates) and absorbed by the one-shot claim.
  uint64_t rpc_duplicates_dropped = 0;
};

/// The replicated router over a pluggable transport. Mirrors
/// ShardedEngine's public serving API (same submission paths, same
/// exactly-once completion contract); updates flow through the inner
/// authoritative engine and re-publish to every replica before the
/// router's readers see the new epoch. Thread-safe like the engines.
class ShardRouter {
 public:
  /// Batch handle type returned by SubmitBatch (one pinned snapshot
  /// per batch; see engine/serving_core.h).
  using Ticket = BatchTicket<ShardedSnapshot>;

  /// Builds the inner engine from `graph`, installs the initial epoch
  /// on `replicas` (not owned; must outlive the router) and starts the
  /// router core. `transport` (not owned) must route endpoint i to
  /// replicas[i]'s Handle — MakeLoopbackCluster wires that for the
  /// in-process tier. The replica list may be empty only if the
  /// transport has endpoints served elsewhere (socket skeleton).
  ShardRouter(Graph graph, const HierarchyOptions& hierarchy_options,
              const ShardRouterOptions& options, Transport* transport,
              std::vector<ShardReplica*> replicas);

  /// Drains the router core (answers or fails every submitted query),
  /// then the inner engine.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;  ///< Not copyable.
  ShardRouter& operator=(const ShardRouter&) = delete;  ///< Not copyable.

  /// Schedules one distance query through the routed tier; the future
  /// resolves with code kOk (answered), kOverloaded/kDeadlineExceeded
  /// (overload machinery, same as the engines) or kUnavailable (every
  /// replica failed the pinned epoch).
  std::future<ShardedQueryResult> Submit(QueryPair query,
                                         Deadline deadline = kNoDeadline);

  /// Schedules a batch pinned to ONE snapshot — and therefore one
  /// shard_epoch per shard on the wire. Answers are bit-identical to
  /// ShardedEngine on the same epoch; per-query failure codes ride the
  /// ticket (BatchTicket::code).
  Ticket SubmitBatch(const std::vector<QueryPair>& queries,
                     Deadline deadline = kNoDeadline);

  /// Completion-queue mode: delivers the caller's tag to `sink`
  /// exactly once — answered, shed, expired or unavailable.
  void SubmitTagged(QueryPair query, uint64_t tag, CompletionSink* sink,
                    Deadline deadline = kNoDeadline);

  /// Batched completion-queue mode; pins one snapshot like SubmitBatch.
  Ticket SubmitBatchTagged(const std::vector<QueryPair>& queries,
                           const std::vector<uint64_t>& tags,
                           CompletionSink* sink,
                           Deadline deadline = kNoDeadline);

  /// Records a desired new weight for a global edge; applied by the
  /// inner engine and re-published to every replica before the
  /// router's next epoch serves.
  void EnqueueUpdate(EdgeId edge, Weight new_weight);

  /// Enqueues many updates atomically (one router epoch's worth lands
  /// in few inner epochs).
  void EnqueueUpdates(const std::vector<WeightUpdate>& updates);

  /// Blocks until every update enqueued before the call has been
  /// applied by the inner engine, installed on every replica, and
  /// published to the router's readers.
  void Flush();

  /// The latest router-published snapshot (never null). Every replica
  /// already holds it.
  std::shared_ptr<const ShardedSnapshot> CurrentSnapshot() const;

  /// Global epoch of the latest router-published snapshot.
  uint64_t CurrentEpoch() const { return CurrentSnapshot()->epoch; }

  /// Number of cells of the inner engine's partition.
  uint32_t num_shards() const { return engine_.num_shards(); }

  /// Point-in-time router-tier counters.
  RouterStats Stats() const;

  /// Zeroes the router core's counters and the RPC counters (bench
  /// warmup). Call only while no queries are in flight.
  void ResetStats();

  /// Router reader thread count.
  int num_query_threads() const { return core_.num_query_threads(); }

 private:
  struct RouterScratch;

  // The routed Route policy over the shared ServingCore (see the
  // policy contract in engine/serving_core.h).
  struct Policy {
    using Snapshot = ShardedSnapshot;
    using Result = ShardedQueryResult;
    // Batched misses sort by (source cell, target cell, target) so
    // fetched rows and inner vectors are reused across each group —
    // the same grouping (and the same arithmetic) as ShardedEngine.
    static constexpr bool kGroupsBatches = true;

    ShardRouter* router;

    void PublishInitial();
    Weight ResolveOldWeight(EdgeId e) const;
    void ApplyBatch(const UpdateBatch& batch);
    uint32_t NumEdges() const;
    Weight Route(const ShardedSnapshot& snap, Vertex s, Vertex t,
                 StatusCode* code) const;
    uint64_t BatchSortKey(const ShardedSnapshot& snap,
                          const QueryPair& q) const;
    void RouteSpan(const ShardedSnapshot& snap, const QueryPair* queries,
                   const uint32_t* idx, size_t count, Weight* out,
                   StatusCode* codes) const;
    void AugmentStats(EngineStats* s) const;
  };

  /// The router side of the transport: a tag-keyed mailbox of blocking
  /// calls. OnResponse settles the tag's call exactly once; a delivery
  /// for an unknown (already-settled) tag is a transport duplicate and
  /// is counted and dropped — the one-shot claim at RPC granularity.
  class Mailbox final : public TransportSink {
   public:
    /// One in-flight RPC: the caller blocks on `cv` until settled.
    struct Call {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;               // guarded by mu
      Status status;                   // guarded by mu until done
      std::vector<uint8_t> payload;    // guarded by mu until done
    };

    /// Registers a fresh tag -> call binding and returns the tag.
    uint64_t Register(std::shared_ptr<Call> call);

    /// Blocks until `call` settles (transport delivery is exactly once
    /// per attempt, possibly inline in Send).
    static void Wait(Call* call);

    void OnResponse(uint64_t tag, Status transport_status,
                    std::vector<uint8_t> payload) override;

    /// Transport duplicates absorbed so far (relaxed).
    uint64_t duplicates_dropped() const {
      return duplicates_.load(std::memory_order_relaxed);
    }
    /// Zeroes the duplicate counter (ResetStats).
    void ResetCounters() {
      duplicates_.store(0, std::memory_order_relaxed);
    }

   private:
    std::mutex mu_;
    std::unordered_map<uint64_t, std::shared_ptr<Call>> calls_;
    std::atomic<uint64_t> next_tag_{1};
    std::atomic<uint64_t> duplicates_{0};
  };

  /// One pinned-epoch RPC with sibling failover: tries every replica
  /// endpoint (round-robin start) until one serves the request at the
  /// pinned shard_epoch. False when all of them fail — the caller
  /// completes the query kUnavailable.
  bool CallReplica(const ShardRequest& req, ShardResponse* resp);

  /// Fetches the boundary row of `global` (owned by `shard`) at the
  /// snapshot's pinned shard_epoch. False on replica exhaustion.
  bool FetchRow(const ShardedSnapshot& snap, uint32_t shard,
                Vertex global, std::vector<Weight>* out);

  /// Fetches the intra-cell distance s->t inside `shard` at the pinned
  /// shard_epoch. False on replica exhaustion.
  bool FetchPoint(const ShardedSnapshot& snap, uint32_t shard, Vertex s,
                  Vertex t, Weight* out);

  /// The one routed query implementation both Route and RouteSpan use:
  /// ShardedEngine's decomposition with replica-fetched rows and the
  /// pinned overlay's min-plus kernels. Writes kUnavailable to *code
  /// (and returns kInfDistance) on replica exhaustion.
  Weight RouteOne(const ShardedSnapshot& snap, Vertex s, Vertex t,
                  RouterScratch* scratch, StatusCode* code);

  /// Installs `snap` on every replica, then publishes it to the router
  /// core — in that order, so a reader-pinned epoch is always held by
  /// the replicas.
  void InstallAndPublish(std::shared_ptr<const ShardedSnapshot> snap);

  const ShardRouterOptions options_;
  Transport* const transport_;           // not owned
  std::vector<ShardReplica*> replicas_;  // not owned

  Mailbox mailbox_;
  std::atomic<uint32_t> next_replica_{0};  // round-robin fan-out start
  // Inner epoch of the last snapshot handed to InstallAndPublish
  // (router writer thread only; skips republishing coalesced no-ops).
  uint64_t last_published_epoch_ = 0;

  // RPC accounting (relaxed; surfaced through Stats()).
  std::atomic<uint64_t> rpcs_sent_{0};
  std::atomic<uint64_t> rpc_retries_{0};
  std::atomic<uint64_t> rpc_stale_{0};
  std::atomic<uint64_t> rpc_failovers_{0};

  ShardedEngine engine_;  // the authoritative writer tier
  Policy policy_{this};
  ServingCore<Policy> core_;  // last member: its readers die first
};

/// An in-process cluster: N replicas plus a LoopbackTransport wired so
/// endpoint i serves from replica i — everything a test or bench needs
/// to stand up the routed tier deterministically.
struct LoopbackCluster {
  /// The replicas, owned by the cluster (endpoint order).
  std::vector<std::unique_ptr<ShardReplica>> replicas;
  /// The transport routing endpoint i to replicas[i]->Handle.
  std::unique_ptr<LoopbackTransport> transport;

  /// Non-owning replica pointers in endpoint order (ShardRouter's
  /// constructor shape).
  std::vector<ShardReplica*> replica_ptrs() const;
};

/// Builds `num_replicas` replicas (each with `replica_options`) behind
/// one loopback transport; `faults` (not owned, may be null) arms the
/// transport fault sites.
LoopbackCluster MakeLoopbackCluster(
    uint32_t num_replicas, const ShardReplicaOptions& replica_options = {},
    FaultInjector* faults = nullptr);

}  // namespace stl

#endif  // STL_DIST_SHARD_ROUTER_H_
