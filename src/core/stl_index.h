// StlIndex: the public entry point of the library. Owns the stable tree
// hierarchy, the labels, and the two maintenance engines; answers distance
// queries on a dynamic road network.
//
// Typical use:
//   Graph g = ...;                       // the road network
//   StlIndex index = StlIndex::Build(&g, {});
//   Weight d = index.Query(s, t);
//   index.ApplyUpdate({edge, old_w, new_w});   // Pareto Search by default
//
// The index keeps a non-owning pointer to the graph: updates applied
// through the index mutate the graph's weights and repair the labels in
// one step, so graph and index never diverge.
#ifndef STL_CORE_STL_INDEX_H_
#define STL_CORE_STL_INDEX_H_

#include <memory>
#include <string>

#include "core/label_search.h"
#include "core/labelling.h"
#include "core/pareto_search.h"
#include "core/tree_hierarchy.h"
#include "graph/updates.h"
#include "util/status.h"

namespace stl {

/// Which maintenance algorithm ApplyUpdate/ApplyBatch uses.
enum class MaintenanceStrategy {
  kParetoSearch,  // STL-P: two searches per update (default, fastest)
  kLabelSearch,   // STL-L: one search per affected ancestor
};

/// Construction statistics reported alongside a built index (Table 4).
struct BuildInfo {
  double hierarchy_seconds = 0;
  double labelling_seconds = 0;
  double total_seconds = 0;
};

/// Stable Tree Labelling index over a dynamic road network.
class StlIndex {
 public:
  // Movable, not copyable. Moving rebinds the maintenance engines (they
  // point into the labels member) and carries the cumulative maintenance
  // statistics over: MaintenanceStatsTotal() after a move reports exactly
  // what the source reported before it. Self-move-assignment is a no-op.
  StlIndex(StlIndex&& o) noexcept
      : g_(o.g_),
        hierarchy_(std::move(o.hierarchy_)),
        labels_(std::move(o.labels_)),
        build_info_(o.build_info_),
        carried_stats_(o.MaintenanceStatsTotal()) {
    InitEngines();
  }
  StlIndex& operator=(StlIndex&& o) noexcept {
    if (this == &o) return *this;
    carried_stats_ = o.MaintenanceStatsTotal();
    g_ = o.g_;
    hierarchy_ = std::move(o.hierarchy_);
    labels_ = std::move(o.labels_);
    build_info_ = o.build_info_;
    InitEngines();
    return *this;
  }
  StlIndex(const StlIndex&) = delete;
  StlIndex& operator=(const StlIndex&) = delete;

  /// Builds the index for `*g`. The graph must stay alive and must only
  /// be mutated through the index afterwards.
  static StlIndex Build(Graph* g, const HierarchyOptions& options);

  // Thread-safety: the const query methods below touch no mutable state
  // (no scratch buffers, no caches), so any number of threads may query
  // one index concurrently — provided no thread is applying updates at
  // the same time. For queries concurrent WITH updates, use the epoch
  // snapshots of engine/query_engine.h instead of sharing one index.

  /// Shortest-path distance between s and t; kInfDistance if unreachable.
  Weight Query(Vertex s, Vertex t) const {
    return QueryDistance(hierarchy_, labels_, s, t);
  }

  /// An actual shortest path s .. t (inclusive); empty if unreachable.
  std::vector<Vertex> QueryShortestPath(Vertex s, Vertex t) const {
    return QueryPath(*g_, hierarchy_, labels_, s, t);
  }

  /// Applies one weight update and repairs the labels.
  void ApplyUpdate(const WeightUpdate& update,
                   MaintenanceStrategy strategy =
                       MaintenanceStrategy::kParetoSearch);

  /// Applies a batch (updates on distinct edges) and repairs the labels.
  /// With kLabelSearch, decreases are batched per ancestor column and
  /// increases detected together, as in Algorithms 1-2; with
  /// kParetoSearch each update runs its own two searches (Algorithms 3-5).
  void ApplyBatch(const UpdateBatch& batch,
                  MaintenanceStrategy strategy =
                      MaintenanceStrategy::kParetoSearch);

  // Structural changes (paper Section 8): road closures are modelled as
  // weight increases to kMaxEdgeWeight ("effectively infinite" — paths
  // through a closed road lose to any open alternative), so the stable
  // hierarchy never changes. Closing a vertex closes its incident edges.
  // Reopening restores the remembered weights.

  /// Closes a road. No-op if already closed. Returns the batch that
  /// ReopenRoads() takes to undo the closure.
  UpdateBatch CloseRoad(EdgeId e,
                        MaintenanceStrategy strategy =
                            MaintenanceStrategy::kLabelSearch);

  /// Closes an intersection (all incident roads).
  UpdateBatch CloseIntersection(Vertex v,
                                MaintenanceStrategy strategy =
                                    MaintenanceStrategy::kLabelSearch);

  /// Reopens roads closed by CloseRoad / CloseIntersection.
  void ReopenRoads(const UpdateBatch& closure,
                   MaintenanceStrategy strategy =
                       MaintenanceStrategy::kLabelSearch);

  const Graph& graph() const { return *g_; }
  const TreeHierarchy& hierarchy() const { return hierarchy_; }
  const Labelling& labels() const { return labels_; }
  const BuildInfo& build_info() const { return build_info_; }

  /// Maintenance work counters (cumulative across updates).
  MaintenanceStats MaintenanceStatsTotal() const;

  /// Index memory footprint in bytes (labels + hierarchy), the paper's
  /// "Labelling Size" (Table 4). Under paged label storage this counts
  /// each physical page exactly once for this index; for honest totals
  /// across page-sharing epoch snapshots, see the deduplicated
  /// resident_index_bytes in engine/query_engine.h's EngineStats.
  uint64_t MemoryBytes() const {
    return labels_.MemoryBytes() + hierarchy_.MemoryBytes();
  }


  /// Persists the index (hierarchy + labels). The graph is not included;
  /// reattach the same (identically weighted) graph on Load.
  Status Save(const std::string& path) const;

  /// Loads an index previously saved for `*g`. Fails with Corruption /
  /// InvalidArgument if the file does not match the graph.
  static Result<StlIndex> Load(Graph* g, const std::string& path);

 private:
  explicit StlIndex(Graph* g) : g_(g) {}
  void InitEngines();

  Graph* g_ = nullptr;
  TreeHierarchy hierarchy_;
  Labelling labels_;
  BuildInfo build_info_;
  // Stats accumulated by engines that no longer exist (each move rebinds
  // fresh engines); MaintenanceStatsTotal() adds the live engines' stats.
  MaintenanceStats carried_stats_;
  // Engines hold scratch buffers; unique_ptr so StlIndex stays movable.
  std::unique_ptr<LabelSearch> label_search_;
  std::unique_ptr<ParetoSearch> pareto_search_;
};

}  // namespace stl

#endif  // STL_CORE_STL_INDEX_H_
