// Sharding layer: how one road network becomes k independently-served
// index shards plus a boundary overlay.
//
// Built on a CellPartition (partition/cells.h) whose separator set S
// isolates the cells from each other:
//
//   shard i     — the subgraph on C_i ∪ S_i (cell vertices plus the
//                 boundary vertices adjacent to the cell), holding every
//                 edge with at least one endpoint in C_i. One
//                 DistanceIndex (any backend) serves it.
//   overlay     — owns the remaining edges (both endpoints in S) and,
//                 per cell, a clique of shard-local boundary-to-boundary
//                 distances. Running Dijkstra over that small graph
//                 yields D[b1][b2]: the EXACT full-graph distance
//                 between every pair of boundary vertices.
//
// Why this is exact: S is a vertex separator, so any path decomposes
// into maximal segments whose interiors each lie inside one cell. Each
// segment is either an S–S edge (a direct overlay edge) or a
// through-one-cell walk (bounded below by that shard's clique entry),
// so shortest paths in the overlay graph equal shortest paths in G
// restricted to boundary endpoints. Query routing then sums
// shard-local distances with overlay rows (engine/sharded_engine.h).
//
// Update locality: a weight change inside cell i touches shard i's
// index and the overlay only — every other shard's published epoch
// stays byte-identical and is re-shared by pointer.
//
// Incremental repair (docs/ARCHITECTURE.md "Incremental overlay
// repair"): the overlay master diffs every clique rebuild and direct
// weight write against its previous published table, derives the set
// of boundary ROWS whose distances can have changed, re-runs Dijkstra
// only from those sources, min-plus-patches the rest through the
// recomputed anchor rows, and pointer-shares every untouched row with
// the previous epoch through per-row copy-on-write chunks
// (util/cow_chunks.h). A from-scratch rebuild remains the fallback
// when the dirty set passes the repair threshold (or the caller
// disallows repair, e.g. under fault injection).
#ifndef STL_INDEX_OVERLAY_H_
#define STL_INDEX_OVERLAY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "partition/cells.h"
#include "util/cow_chunks.h"

namespace stl {

class IndexView;  // index/distance_index.h

/// Immutable mapping between the full graph and its shards: vertex and
/// edge ownership, local renumberings, and the boundary bookkeeping the
/// overlay and the query router share. Built once per engine; every
/// published snapshot holds it by shared_ptr.
struct ShardLayout {
  /// `shard_of_edge` value for edges owned by the overlay (both
  /// endpoints in S).
  static constexpr uint32_t kOverlayShard = UINT32_MAX;

  /// Static (weight-independent) description of one shard.
  struct Shard {
    /// Local vertex id -> global vertex id. Cell vertices come first
    /// (locals [0, num_cell_vertices)), then S_i in ascending global
    /// order.
    std::vector<Vertex> to_global;
    /// Number of cell-owned vertices (locals below this are C_i).
    uint32_t num_cell_vertices = 0;
    /// Local edge id -> global edge id.
    std::vector<EdgeId> edge_to_global;
    /// Local vertex ids of S_i, aligned with
    /// CellPartition::cell_boundary[i].
    std::vector<Vertex> boundary_local;
    /// Positions of S_i in the global boundary order (indexes into
    /// OverlayTable rows), aligned with `boundary_local`.
    std::vector<uint32_t> boundary_pos;
  };

  /// One direct overlay edge: a graph edge with both endpoints in S.
  struct DirectEdge {
    uint32_t a_pos = 0;       ///< Position of one endpoint in `boundary`.
    uint32_t b_pos = 0;       ///< Position of the other endpoint.
    EdgeId global_edge = 0;   ///< The owning graph edge.
  };

  /// The cell partition this layout was derived from.
  CellPartition partition;
  /// Per-shard static description, indexed by cell id.
  std::vector<Shard> shards;
  /// Global vertex -> owning shard (CellPartition::kBoundaryCell for
  /// boundary vertices).
  std::vector<uint32_t> shard_of_vertex;
  /// Global vertex -> local id within its owning shard (meaningless for
  /// boundary vertices).
  std::vector<Vertex> local_of_vertex;
  /// Global edge -> owning shard, or kOverlayShard for S–S edges.
  std::vector<uint32_t> shard_of_edge;
  /// Global edge -> local edge id in its shard, or index into
  /// `direct_edges` when overlay-owned.
  std::vector<uint32_t> local_of_edge;
  /// Global vertex -> position in CellPartition::boundary (UINT32_MAX
  /// for non-boundary vertices).
  std::vector<uint32_t> boundary_pos_of_vertex;
  /// The overlay's own edge set (S–S graph edges).
  std::vector<DirectEdge> direct_edges;
  /// Per boundary position: the shards listing that vertex in S_i, as
  /// (shard, index into that shard's boundary_local/boundary_pos).
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> memberships;

  /// Number of shards.
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards.size());
  }
  /// Number of boundary vertices (the overlay's vertex count).
  uint32_t num_boundary() const {
    return static_cast<uint32_t>(partition.boundary.size());
  }
  /// Resident bytes of the layout tables.
  uint64_t MemoryBytes() const;
};

/// A freshly computed layout plus the per-shard subgraphs seeded with
/// the master graph's current weights. The engine takes ownership of
/// the graphs (they become each shard's mutable master) and freezes the
/// layout behind a shared_ptr.
struct ShardPlan {
  /// The immutable mapping tables.
  ShardLayout layout;
  /// Per-shard subgraph, aligned with layout.shards. Local vertex v of
  /// shard i is layout.shards[i].to_global[v].
  std::vector<Graph> shard_graphs;
};

/// Computes the shard layout and subgraphs of `g` under `cells`.
/// Dies if `cells` does not describe `g` (sizes, separator property).
ShardPlan BuildShardPlan(const Graph& g, const CellPartition& cells);

/// The row-fetch surface shared by the in-process router and the
/// distributed shard replicas (dist/replica.h): fills `out` with the
/// shard-local distances from global vertex `global` (owned by shard
/// `shard`) to that shard's boundary set S_i, computed on `view` —
/// one point query per boundary vertex, in the order of
/// ShardLayout::Shard::boundary_local. Returns the row width |S_i|;
/// kInfDistance where the shard subgraph disconnects them. The row is
/// a pure function of (layout, shard, view, global), so any holder of
/// the same immutable view — local reader or remote replica — produces
/// bit-identical bytes.
uint32_t FillShardBoundaryRow(const ShardLayout& layout, uint32_t shard,
                              const IndexView& view, Vertex global,
                              std::vector<Weight>* out);

/// Minimal fan-out surface for BoundaryOverlay::RebuildClique: Run()
/// must invoke `worker` Width() times — possibly concurrently — and
/// return only after every invocation has completed. Workers pull
/// sources from a shared atomic counter, so running fewer copies (or
/// all of them inline) is always correct, just slower.
class OverlayExecutor {
 public:
  virtual ~OverlayExecutor() = default;  ///< Executors are caller-owned.

  /// Suggested concurrent worker count (e.g. the reader-pool width).
  virtual uint32_t Width() const = 0;

  /// Runs `worker()` Width() times and joins them all before returning.
  virtual void Run(const std::function<void()>& worker) = 0;
};

/// Per-publish statistics of the boundary overlay: how much of the
/// table the incremental repair actually had to recompute, and how much
/// was pointer-shared with the previous epoch.
struct OverlayPublishStats {
  /// Rows of the published table (the boundary vertex count n).
  uint64_t rows_total = 0;
  /// Rows recomputed by a full Dijkstra run (the dirty-source set R; n
  /// when the publish fell back to the from-scratch rebuild).
  uint64_t rows_repaired = 0;
  /// Non-dirty rows whose values moved under the anchor min-plus patch
  /// (decrease propagation) and were rewritten.
  uint64_t rows_patched = 0;
  /// Rows pointer-shared with the previous published table — every row
  /// not rewritten to new bytes: untouched rows plus dirty rows whose
  /// re-run reproduced the old values exactly (so a row can count in
  /// both rows_repaired and rows_shared).
  uint64_t rows_shared = 0;
  /// Clique entries recomputed by RebuildClique calls since the last
  /// publish (sum of |S_i| * (|S_i| - 1) / 2 over rebuilt shards).
  uint64_t clique_entries_recomputed = 0;
  /// Payload bytes of the shared rows (full-table plus packed copies).
  uint64_t bytes_shared = 0;
  /// True when this publish ran the from-scratch all-pairs rebuild
  /// (first publish, repair disallowed, or dirty set over threshold).
  bool full_rebuild = false;
};

/// One immutable published epoch of the boundary overlay: the exact
/// full-graph distance between every pair of boundary vertices, plus
/// per-shard packed copies of the rows so the router's inner min-plus
/// loop reads contiguous memory (util/simd.h kernels). Rows live in
/// per-row copy-on-write chunks: consecutive epochs pointer-share every
/// row the producing batch left clean.
class OverlayTable {
 public:
  /// An empty table (no boundary vertices; k == 1 layouts).
  OverlayTable() = default;

  /// Number of boundary vertices.
  uint32_t num_boundary() const { return n_; }

  /// Exact distance between boundary positions a and b (kInfDistance
  /// when unreachable).
  Weight At(uint32_t a, uint32_t b) const {
    STL_DCHECK(a < n_ && b < n_);
    return rows_.Data(a)[b];
  }

  /// Row a of the full table (n entries). Row pointers double as
  /// physical identity: equal pointers across epochs mean the row is
  /// CoW-shared, not copied.
  const Weight* Row(uint32_t a) const {
    STL_DCHECK(a < n_);
    return rows_.Data(a);
  }

  /// Row a restricted to shard `s`'s boundary set, packed contiguously
  /// in the order of ShardLayout::Shard::boundary_pos (|S_s| entries).
  const Weight* PackedRow(uint32_t s, uint32_t a) const {
    STL_DCHECK(s < packed_.size());
    STL_DCHECK(a < n_);
    return packed_[s].rows.Data(a);
  }

  /// The packed-row batch entry point for batched routing: for each of
  /// the `nrows` boundary positions in `rows`, writes
  /// `out[i] = min_j PackedRow(s, rows[i])[j] + b[j]` over shard `s`'s
  /// packed width (the SIMD min-plus kernel per row). `b` must hold
  /// that width's entries — a shard-local boundary-distance row. Batched
  /// submission computes one such inner vector per (source-cell,
  /// target-cell, target) group and reuses it across every source in
  /// the group (engine/sharded_engine.h).
  void MinPlusRowsInto(uint32_t s, const uint32_t* rows, uint32_t nrows,
                       const Weight* b, Weight* out) const;

  /// Resident bytes of the table and its packed copies, counting shared
  /// rows as if owned (see AddResidentBytes for deduplication).
  uint64_t MemoryBytes() const;

  /// Adds this table's resident bytes to a running total, counting each
  /// physical row chunk once across every call sharing `seen` — the
  /// honest footprint under cross-epoch row sharing. Returns the bytes
  /// newly added.
  uint64_t AddResidentBytes(std::unordered_set<const void*>* seen) const;

 private:
  friend class BoundaryOverlay;

  /// Per-shard packed column block: n row chunks of |S_i| entries.
  struct PackedBlock {
    uint32_t width = 0;
    CowChunks<Weight> rows;
  };

  uint32_t n_ = 0;
  CowChunks<Weight> rows_;           // n chunks of n entries each
  std::vector<PackedBlock> packed_;  // one block per shard
};

/// The writer-owned overlay master. Holds the mutable inputs — direct
/// S–S edge weights and one distance clique per shard — plus the diff
/// bookkeeping incremental repair needs, and publishes immutable
/// OverlayTables. Not thread-safe; the engine's single-writer
/// discipline applies (RebuildClique may fan work out through an
/// OverlayExecutor, but only one RebuildClique/Publish runs at a time).
class BoundaryOverlay {
 public:
  /// Binds to `layout` (not owned; must outlive the overlay) and seeds
  /// the direct edge weights from `g`'s current weights. Cliques start
  /// empty; call RebuildClique for every shard before the first
  /// Publish.
  BoundaryOverlay(const ShardLayout* layout, const Graph& g);

  /// Updates the weight of direct overlay edge `direct_slot` (an index
  /// into ShardLayout::direct_edges), recording the change for the next
  /// Publish's repair.
  void SetDirectWeight(uint32_t direct_slot, Weight w);

  /// Recomputes shard `s`'s boundary-to-boundary distance clique from
  /// its current subgraph weights: one Dijkstra per boundary source
  /// over `shard_graph`. `executor` fans the per-source searches out
  /// (nullptr runs them inline on the caller). The shard is marked
  /// dirty; the next Publish diffs its clique against the published
  /// state, so repeated rebuilds of one shard coalesce into one
  /// old->new delta per entry. Prefer this form for backends whose
  /// point queries are themselves graph searches (CH): |S_s| Dijkstras
  /// beat |S_s|^2 / 2 bidirectional searches.
  void RebuildClique(uint32_t s, const Graph& shard_graph,
                     OverlayExecutor* executor = nullptr);

  /// Same contract, computed as |S_s|^2 / 2 point queries against the
  /// shard's freshly published epoch `view` instead of raw Dijkstras.
  /// Preferred for label backends (capabilities().fast_point_queries):
  /// a label merge per pair is far cheaper than settling the whole
  /// subgraph per source. Workers claim sources from a shared counter,
  /// so `executor` fan-out is safe for any view (epochs are immutable
  /// and reader-concurrent).
  void RebuildClique(uint32_t s, const IndexView& view,
                     OverlayExecutor* executor = nullptr);

  /// Test / diagnostic hook: overwrites clique entry (i, j) of shard
  /// `s` (symmetrically) and records the change for the next Publish's
  /// repair, as if a clique rebuild had produced it. kInfDistance
  /// models an in-shard disconnect — weight-only update streams cannot
  /// produce infinite-distance transitions, so repair's handling of
  /// them is exercised through this hook (tests/overlay_test.cc).
  void OverrideCliqueEntryForTest(uint32_t s, uint32_t i, uint32_t j,
                                  Weight w);

  /// Publishes the next immutable table. With a previous table on file
  /// and `allow_repair`, runs incremental row repair: rows whose
  /// distances can have changed (endpoints of changed overlay edges,
  /// plus rows whose old shortest paths could have used an increased
  /// edge) are re-run through Dijkstra; the rest are min-plus-patched
  /// through the recomputed anchor rows and pointer-share their chunks
  /// with the previous epoch when unchanged. Falls back to the
  /// from-scratch rebuild when the dirty-row set exceeds
  /// set_repair_threshold's fraction of n (or on the first publish /
  /// `allow_repair == false`). Either path yields the exact all-pairs
  /// table — bit-identical, since exact distances are unique.
  std::shared_ptr<const OverlayTable> Publish(
      bool allow_repair = true, OverlayPublishStats* stats = nullptr);

  /// Sets the repair fallback threshold: when more than `fraction` of
  /// the n boundary rows need a Dijkstra re-run, Publish rebuilds from
  /// scratch instead. A repaired row costs the same Dijkstra as a
  /// rebuilt one and the min-plus patch over the remaining rows is
  /// cheap (O((n - R) * R * n) adds), so repair keeps winning until R
  /// approaches n — hence the high default (0.75).
  void set_repair_threshold(double fraction) {
    repair_threshold_ = fraction;
  }

  /// Resident bytes of the mutable overlay state.
  uint64_t MemoryBytes() const;

 private:
  /// One overlay edge whose weight changed since the last publish
  /// (direct S–S edge or per-shard clique entry), with both weights.
  struct ChangedEdge {
    uint32_t a_pos;
    uint32_t b_pos;
    Weight old_w;
    Weight new_w;
  };

  // The from-scratch all-pairs build (also the repair fallback).
  std::shared_ptr<const OverlayTable> FullRebuild(OverlayPublishStats* st);
  // The incremental path; returns nullptr when the dirty-row set is
  // over threshold (caller falls back to FullRebuild).
  std::shared_ptr<const OverlayTable> Repair(
      const std::vector<ChangedEdge>& changes, OverlayPublishStats* st);
  // Rewrites row r (full row + per-shard packed copies) of `table`
  // with `values`, detaching the row chunks from the previous epoch.
  void WriteRow(OverlayTable* table, uint32_t r, const Weight* values);
  // Installs a freshly computed w x w clique for shard s, accumulates
  // the recompute counter and marks the shard dirty for the next
  // Publish's diff (shared tail of both RebuildClique forms).
  void InstallClique(uint32_t s, uint32_t w, std::vector<Weight> fresh);
  // Rebuilds the combined per-source search graph — direct S–S arcs
  // plus one arc per finite clique entry, min-combined per vertex pair
  // — into search_adj_ and returns it. The scratch vectors keep their
  // capacity across publishes, so steady-state repairs allocate
  // nothing here.
  const std::vector<std::vector<std::pair<uint32_t, Weight>>>&
  SearchAdjacency();

  const ShardLayout* layout_;
  std::vector<Weight> direct_weight_;  // aligned with layout->direct_edges
  // Per shard: |S_i| x |S_i| row-major distance clique through that
  // shard only (kInfDistance where disconnected inside the shard).
  std::vector<std::vector<Weight>> clique_;

  // --- repair bookkeeping (reset every Publish) ---
  // Per-shard clique state as of the last publish: the diff base for
  // change detection (clique_ vs clique_published_ at Publish time).
  std::vector<std::vector<Weight>> clique_published_;
  std::vector<uint8_t> clique_dirty_;   // shard rebuilt since publish
  std::vector<uint32_t> dirty_shards_;  // dirty list, publish order
  // (slot, weight before the first change this cycle) per touched
  // direct edge; stamped so repeat writes keep the true old weight.
  std::vector<std::pair<uint32_t, Weight>> pending_direct_;
  std::vector<uint32_t> direct_touch_stamp_;
  uint32_t publish_seq_ = 1;
  uint64_t pending_clique_entries_ = 0;
  double repair_threshold_ = 0.75;
  std::shared_ptr<const OverlayTable> last_;  // previous published epoch
  // SearchAdjacency scratch (writer-only, reused across publishes).
  std::vector<std::vector<std::pair<uint32_t, Weight>>> search_adj_;
  std::vector<uint32_t> adj_stamp_;
  std::vector<uint32_t> adj_slot_;
};

}  // namespace stl

#endif  // STL_INDEX_OVERLAY_H_
