#include "workload/update_workload.h"

#include <algorithm>

#include "util/rng.h"

namespace stl {

std::vector<EdgeId> SampleDistinctEdges(const Graph& g, size_t count,
                                        uint64_t seed) {
  const size_t m = g.NumEdges();
  count = std::min(count, m);
  Rng rng(seed);
  // Partial Fisher-Yates over the edge ids.
  std::vector<EdgeId> ids(m);
  for (EdgeId e = 0; e < m; ++e) ids[e] = e;
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + rng.NextBounded(m - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(count);
  return ids;
}

UpdateBatch MakeIncreaseBatch(const Graph& g,
                              const std::vector<EdgeId>& edges,
                              double factor) {
  STL_CHECK(factor > 1.0);
  UpdateBatch batch;
  batch.reserve(edges.size());
  for (EdgeId e : edges) {
    Weight old_w = g.EdgeWeight(e);
    uint64_t scaled = static_cast<uint64_t>(old_w * factor);
    Weight new_w = static_cast<Weight>(
        std::min<uint64_t>(scaled, kMaxEdgeWeight));
    if (new_w <= old_w) new_w = std::min<Weight>(old_w + 1, kMaxEdgeWeight);
    if (new_w == old_w) continue;  // already at the cap
    batch.push_back(WeightUpdate{e, old_w, new_w});
  }
  return batch;
}

UpdateBatch MakeRestoreBatch(const UpdateBatch& increase_batch) {
  return InverseBatch(increase_batch);
}

}  // namespace stl
