#include "core/labelling.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/min_heap.h"

namespace stl {

Labelling Labelling::AllocateFor(const TreeHierarchy& h) {
  Labelling l;
  const uint32_t n = h.NumVertices();
  l.offset_.resize(n + 1);
  l.offset_[0] = 0;
  for (Vertex v = 0; v < n; ++v) {
    l.offset_[v + 1] = l.offset_[v] + h.LabelSize(v);
  }
  l.entries_.assign(l.offset_[n], kInfDistance);
  for (Vertex v = 0; v < n; ++v) {
    l.entries_[l.offset_[v] + h.Tau(v)] = 0;  // self distance
  }
  return l;
}

Status Labelling::Serialize(BinaryWriter* w) const {
  Status s = w->WriteVector(offset_);
  if (s.ok()) s = w->WriteVector(entries_);
  return s;
}

Status Labelling::Deserialize(BinaryReader* r) {
  Status s = r->ReadVector(&offset_);
  if (s.ok()) s = r->ReadVector(&entries_);
  if (!s.ok()) return s;
  if (offset_.empty() || offset_.back() != entries_.size()) {
    return Status::Corruption("labelling: offset/entry mismatch");
  }
  return Status::OK();
}

namespace {

/// Dijkstra from cut vertex r restricted to Desc(r), writing column
/// tau(r) of every settled vertex's label. Reusable buffers live in the
/// caller (ColumnBuilder) so the per-column cost is output-sensitive.
class ColumnBuilder {
 public:
  ColumnBuilder(const Graph& g, const TreeHierarchy& h)
      : g_(g), h_(h), dist_(g.NumVertices(), kInfDistance),
        stamp_(g.NumVertices(), 0) {}

  void FillColumn(Vertex r, Labelling* labels) {
    const uint32_t col = h_.Tau(r);
    ++epoch_;
    heap_.clear();
    dist_[r] = 0;
    stamp_[r] = epoch_;
    heap_.Push(0, r);
    while (!heap_.empty()) {
      auto [d, v] = heap_.Pop();
      if (stamp_[v] != epoch_ || d != dist_[v]) continue;
      labels->Set(v, col, d);
      for (const Arc& a : g_.ArcsOf(v)) {
        // Desc(r) membership: every edge joins ⪯-comparable vertices
        // (Lemma 5.3), so staying at tau > tau(r) keeps the search inside
        // the subgraph G[Desc(r)].
        if (h_.Tau(a.head) <= col) continue;
        Weight nd = SaturatingAdd(d, a.weight);
        if (stamp_[a.head] != epoch_ || nd < dist_[a.head]) {
          dist_[a.head] = nd;
          stamp_[a.head] = epoch_;
          heap_.Push(nd, a.head);
        }
      }
    }
  }

 private:
  const Graph& g_;
  const TreeHierarchy& h_;
  std::vector<Weight> dist_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  MinHeap<Weight, Vertex> heap_;
};

}  // namespace

Labelling BuildLabelling(const Graph& g, const TreeHierarchy& h,
                         int num_threads) {
  STL_CHECK_EQ(g.NumVertices(), h.NumVertices());
  STL_CHECK_GE(num_threads, 1);
  Labelling labels = Labelling::AllocateFor(h);
  if (num_threads == 1) {
    ColumnBuilder builder(g, h);
    for (uint32_t nid = 0; nid < h.NumNodes(); ++nid) {
      for (Vertex r : h.VerticesOf(nid)) {
        builder.FillColumn(r, &labels);
      }
    }
    return labels;
  }
  // Parallel: cut vertices are independent work items writing disjoint
  // label cells. Work-steal via one atomic cursor over the node order.
  std::vector<Vertex> cuts;
  cuts.reserve(g.NumVertices());
  for (uint32_t nid = 0; nid < h.NumNodes(); ++nid) {
    for (Vertex r : h.VerticesOf(nid)) cuts.push_back(r);
  }
  std::atomic<size_t> cursor{0};
  auto worker = [&]() {
    ColumnBuilder builder(g, h);
    while (true) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= cuts.size()) break;
      builder.FillColumn(cuts[i], &labels);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 1; t < num_threads; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
  return labels;
}

void RebuildColumn(const Graph& g, const TreeHierarchy& h, Vertex r,
                   Labelling* labels) {
  // Reset the column first: the restricted Dijkstra only writes settled
  // vertices, and an update may have disconnected part of the subgraph.
  const uint32_t col = h.Tau(r);
  // Collect Desc(r) by the same restricted traversal, ignoring weights.
  std::vector<Vertex> stack = {r};
  std::vector<uint8_t> seen(g.NumVertices(), 0);
  seen[r] = 1;
  while (!stack.empty()) {
    Vertex v = stack.back();
    stack.pop_back();
    labels->Set(v, col, v == r ? 0 : kInfDistance);
    for (const Arc& a : g.ArcsOf(v)) {
      if (h.Tau(a.head) > col && !seen[a.head]) {
        seen[a.head] = 1;
        stack.push_back(a.head);
      }
    }
  }
  ColumnBuilder builder(g, h);
  builder.FillColumn(r, labels);
}

namespace {

/// Appends the vertices strictly between `v` and the ancestor at label
/// position `col` (exclusive of both) walking v -> ancestor by greedy
/// descent: each step takes an arc (v, n) with
///   L_v[col] == w(v, n) + d_col(n),
/// where d_col(n) is 0 at the ancestor itself and L_n[col] inside the
/// subgraph. Exactness of the labels guarantees progress.
void UnpackTowardsAncestor(const Graph& g, const TreeHierarchy& h,
                           const Labelling& labels, Vertex v, uint32_t col,
                           std::vector<Vertex>* out) {
  const uint32_t n_limit = g.NumVertices();
  uint32_t steps = 0;
  while (labels.At(v, col) != 0) {
    STL_CHECK(++steps <= n_limit) << "path unpacking did not converge";
    const Weight dv = labels.At(v, col);
    Vertex next = UINT32_MAX;
    for (const Arc& a : g.ArcsOf(v)) {
      const uint32_t tn = h.Tau(a.head);
      if (tn < col) continue;  // outside Desc(ancestor)
      const Weight dn = (tn == col) ? 0 : labels.At(a.head, col);
      if (dn != kInfDistance && SaturatingAdd(dn, a.weight) == dv) {
        next = a.head;
        break;
      }
    }
    STL_CHECK(next != UINT32_MAX) << "no label-consistent arc";
    v = next;
    if (labels.At(v, col) != 0) out->push_back(v);
  }
}

}  // namespace

std::vector<Vertex> QueryPath(const Graph& g, const TreeHierarchy& h,
                              const Labelling& labels, Vertex s, Vertex t) {
  if (s == t) return {s};
  // Locate the tight hub of Equation 3.
  const uint32_t k = h.CommonAncestorCount(s, t);
  const Weight* ls = labels.Data(s);
  const Weight* lt = labels.Data(t);
  uint32_t best = kInfDistance + kInfDistance;
  uint32_t best_i = 0;
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t cand = ls[i] + lt[i];
    if (cand < best) {
      best = cand;
      best_i = i;
    }
  }
  if (best >= kInfDistance) return {};
  const Vertex r = h.AncestorAt(s, best_i);
  // s .. r (forward), then r .. t (built backward, reversed in place).
  std::vector<Vertex> path;
  path.push_back(s);
  if (r != s) {
    UnpackTowardsAncestor(g, h, labels, s, best_i, &path);
    path.push_back(r);
  }
  if (r != t) {
    std::vector<Vertex> back;
    UnpackTowardsAncestor(g, h, labels, t, best_i, &back);
    path.insert(path.end(), back.rbegin(), back.rend());
    path.push_back(t);
  }
  return path;
}

Weight QueryDistance(const TreeHierarchy& h, const Labelling& labels,
                     Vertex s, Vertex t) {
  if (s == t) return 0;
  const uint32_t k = h.CommonAncestorCount(s, t);
  const Weight* ls = labels.Data(s);
  const Weight* lt = labels.Data(t);
  uint32_t best = kInfDistance + kInfDistance;  // fits in uint32
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t cand = ls[i] + lt[i];
    best = std::min(best, cand);
  }
  return best >= kInfDistance ? kInfDistance : best;
}

}  // namespace stl
