#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace stl {
namespace {

using testing_util::MakeGraph;
using testing_util::TwoComponentGraph;

TEST(GraphTest, EmptyGraph) {
  Result<Graph> g = Graph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumVertices(), 0u);
  EXPECT_EQ(g.value().NumEdges(), 0u);
  EXPECT_TRUE(IsConnected(g.value()));
}

TEST(GraphTest, BasicAccessors) {
  Graph g = MakeGraph(4, {{0, 1, 5}, {1, 2, 7}, {0, 2, 3}, {2, 3, 1}});
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(2), 3u);
  EXPECT_EQ(g.Degree(3), 1u);
}

TEST(GraphTest, AdjacencySortedByHead) {
  Graph g = MakeGraph(5, {{2, 4, 1}, {2, 0, 1}, {2, 3, 1}, {2, 1, 1}});
  auto arcs = g.ArcsOf(2);
  ASSERT_EQ(arcs.size(), 4u);
  for (size_t i = 0; i + 1 < arcs.size(); ++i) {
    EXPECT_LT(arcs[i].head, arcs[i + 1].head);
  }
}

TEST(GraphTest, ArcWeightsMirrorEdges) {
  Graph g = MakeGraph(3, {{0, 1, 5}, {1, 2, 9}});
  for (Vertex v = 0; v < 3; ++v) {
    for (const Arc& a : g.ArcsOf(v)) {
      EXPECT_EQ(a.weight, g.EdgeWeight(a.edge));
    }
  }
}

TEST(GraphTest, SetEdgeWeightUpdatesBothDirections) {
  Graph g = MakeGraph(3, {{0, 1, 5}, {1, 2, 9}});
  auto e = g.FindEdge(0, 1);
  ASSERT_TRUE(e.has_value());
  g.SetEdgeWeight(*e, 100);
  EXPECT_EQ(g.EdgeWeight(*e), 100u);
  for (const Arc& a : g.ArcsOf(0)) {
    if (a.head == 1) {
      EXPECT_EQ(a.weight, 100u);
    }
  }
  for (const Arc& a : g.ArcsOf(1)) {
    if (a.head == 0) {
      EXPECT_EQ(a.weight, 100u);
    }
  }
}

TEST(GraphTest, FindEdgeBothDirectionsAndMissing) {
  Graph g = MakeGraph(4, {{0, 1, 5}, {1, 2, 9}});
  EXPECT_TRUE(g.FindEdge(0, 1).has_value());
  EXPECT_TRUE(g.FindEdge(1, 0).has_value());
  EXPECT_EQ(g.FindEdge(0, 1), g.FindEdge(1, 0));
  EXPECT_FALSE(g.FindEdge(0, 2).has_value());
  EXPECT_FALSE(g.FindEdge(0, 0).has_value());
  EXPECT_FALSE(g.FindEdge(0, 99).has_value());
}

TEST(GraphTest, RejectsSelfLoop) {
  Result<Graph> g = Graph::FromEdges(3, {{1, 1, 5}});
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  Result<Graph> g = Graph::FromEdges(3, {{0, 3, 5}});
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsZeroWeight) {
  Result<Graph> g = Graph::FromEdges(3, {{0, 1, 0}});
  ASSERT_FALSE(g.ok());
}

TEST(GraphTest, RejectsOversizedWeight) {
  Result<Graph> g = Graph::FromEdges(3, {{0, 1, kMaxEdgeWeight + 1}});
  ASSERT_FALSE(g.ok());
}

TEST(GraphTest, RejectsDuplicateEdges) {
  Result<Graph> g = Graph::FromEdges(3, {{0, 1, 5}, {1, 0, 7}});
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("duplicate"), std::string::npos);
}

TEST(GraphDeathTest, SetEdgeWeightValidatesRange) {
  Graph g = MakeGraph(3, {{0, 1, 5}});
  EXPECT_DEATH(g.SetEdgeWeight(0, 0), "out of range");
}

TEST(GraphTest, ConnectedComponents) {
  Graph g = TwoComponentGraph();
  auto [comp, num] = ConnectedComponents(g);
  EXPECT_EQ(num, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_FALSE(IsConnected(g));
}

TEST(GraphTest, ExtractLargestComponent) {
  Graph g = TwoComponentGraph();
  auto [largest, remap] = ExtractLargestComponent(g);
  EXPECT_EQ(largest.NumVertices(), 3u);
  EXPECT_EQ(largest.NumEdges(), 3u);
  EXPECT_TRUE(IsConnected(largest));
  EXPECT_EQ(remap[3], UINT32_MAX);
  EXPECT_EQ(remap[4], UINT32_MAX);
  EXPECT_NE(remap[0], UINT32_MAX);
}

TEST(GraphTest, IsolatedVerticesAreComponents) {
  Graph g = MakeGraph(4, {{0, 1, 2}});
  auto [comp, num] = ConnectedComponents(g);
  (void)comp;
  EXPECT_EQ(num, 3u);
}

TEST(GraphTest, MemoryBytesNonTrivial) {
  Graph g = MakeGraph(3, {{0, 1, 5}, {1, 2, 9}});
  EXPECT_GT(g.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace stl
