#include "engine/query_engine.h"

#include <unordered_set>
#include <utility>

#include "util/logging.h"

namespace stl {

namespace {

ServingCoreOptions CoreOptions(const EngineOptions& options) {
  ServingCoreOptions core;
  core.num_query_threads = options.num_query_threads;
  core.max_batch_size = options.max_batch_size;
  core.result_cache_entries = options.result_cache_entries;
  core.serving = options.serving;
  return core;
}

}  // namespace

QueryEngine::QueryEngine(Graph graph,
                         const HierarchyOptions& hierarchy_options,
                         const EngineOptions& options)
    : options_(options), core_(&policy_, CoreOptions(options)) {
  graph_ = std::make_unique<Graph>(std::move(graph));
  index_ = MakeDistanceIndex(options_.backend, graph_.get(),
                             hierarchy_options);
  capabilities_ = index_->capabilities();
  // Epoch 0's baseline: graph chunk clones before the first publish
  // (e.g. from the build itself) are not publish cost.
  harvested_graph_chunks_ = graph_->cow_stats().chunks_cloned;
  harvested_graph_bytes_ = graph_->cow_stats().bytes_cloned;
  core_.Start();  // publishes epoch 0, starts the writer
}

QueryEngine::~QueryEngine() = default;  // core_ drains first (last member)

// ------------------------------------------------------- the flat policy

void QueryEngine::Policy::PublishInitial() { engine->PublishSnapshot(0); }

Weight QueryEngine::Policy::ResolveOldWeight(EdgeId e) const {
  return engine->graph_->EdgeWeight(e);
}

void QueryEngine::Policy::ApplyBatch(const UpdateBatch& batch) {
  // Pick the per-batch STL-P/STL-L strategy (backends with a single
  // maintenance scheme ignore it), repair the master index, publish one
  // epoch.
  QueryEngine& e = *engine;
  ServingCounters& counters = e.core_.counters();
  const MaintenanceStrategy strategy =
      ChooseStrategy(e.options_.strategy,
                     e.options_.auto_label_search_threshold, batch.size());
  counters.batch_counters.Count(e.index_->ApplyBatch(batch, strategy));
  counters.updates_applied.fetch_add(batch.size(),
                                     std::memory_order_relaxed);
  const uint64_t epoch =
      counters.epochs_published.fetch_add(1, std::memory_order_relaxed) + 1;
  e.PublishSnapshot(epoch);
}

uint32_t QueryEngine::Policy::NumEdges() const {
  return engine->graph_->NumEdges();
}

Weight QueryEngine::Policy::Route(const EngineSnapshot& snap, Vertex s,
                                  Vertex t, StatusCode* code) const {
  (void)code;  // in-process routing cannot fail; *code stays kOk
  return snap.Query(s, t);
}

uint64_t QueryEngine::Policy::BatchSortKey(const EngineSnapshot& snap,
                                           const QueryPair& q) const {
  (void)snap;
  (void)q;
  return 0;  // kGroupsBatches is false; never called
}

void QueryEngine::Policy::RouteSpan(const EngineSnapshot& snap,
                                    const QueryPair* queries,
                                    const uint32_t* idx, size_t count,
                                    Weight* out,
                                    StatusCode* codes) const {
  (void)codes;  // in-process routing cannot fail; codes stay kOk
  for (size_t j = 0; j < count; ++j) {
    const QueryPair& q = queries[idx[j]];
    out[idx[j]] = snap.Query(q.first, q.second);
  }
}

void QueryEngine::Policy::AugmentStats(EngineStats* s) const {
  s->backend = engine->options_.backend;
  // Honest resident memory of the serving state, wait-free: the
  // current snapshot is immutable (for CoW backends, a structural copy
  // of the master as of its publish — they share every page the batch
  // did not dirty), so walking the snapshot counts each physical
  // page/chunk exactly once without touching — or locking against —
  // the writer. Pages the writer cloned since that publish appear at
  // the next publish.
  std::shared_ptr<const EngineSnapshot> snap = engine->CurrentSnapshot();
  std::unordered_set<const void*> seen;
  uint64_t bytes = snap->view->AddResidentBytes(&seen);
  bytes += snap->graph.AddResidentBytes(&seen);
  s->resident_index_bytes = bytes;
}

// --------------------------------------------------------- publication

void QueryEngine::PublishSnapshot(uint64_t epoch) {
  Timer publish_timer;
  ServingCounters& counters = core_.counters();
  auto snap = std::make_shared<EngineSnapshot>();
  snap->epoch = epoch;
  PublishInfo info;
  snap->view = index_->PublishView(options_.flat_publish, &info);
  // Harvest the graph-side CoW clone counters accumulated since the last
  // publish; together with the backend's label-side report they are the
  // real byte cost of isolating the previous epoch from this one.
  const CowChunkStats gc = graph_->cow_stats();
  snap->label_pages_cloned = info.label_pages_cloned;
  snap->cow_bytes_cloned =
      info.label_bytes_cloned + (gc.bytes_cloned - harvested_graph_bytes_);
  counters.label_pages_cloned.fetch_add(info.label_pages_cloned,
                                        std::memory_order_relaxed);
  counters.graph_chunks_cloned.fetch_add(
      gc.chunks_cloned - harvested_graph_chunks_,
      std::memory_order_relaxed);
  counters.cow_bytes_cloned.fetch_add(snap->cow_bytes_cloned,
                                      std::memory_order_relaxed);
  harvested_graph_chunks_ = gc.chunks_cloned;
  harvested_graph_bytes_ = gc.bytes_cloned;

  if (options_.flat_publish) {
    // Baseline: the pre-CoW deep copy, O(graph weights) per epoch. Count
    // only the payload bytes DeepCopy physically copies (shared
    // topology/layout and pointer tables are excluded).
    snap->graph = graph_->DeepCopy();
    info.deep_bytes_copied += snap->graph.CowPayloadBytes();
  } else {
    // Structural share: O(chunks) pointer copies + refcount bumps, zero
    // entry copies. Untouched chunks stay physically shared with every
    // older epoch still alive.
    snap->graph = *graph_;
  }
  counters.publish_bytes_deep_copied.fetch_add(info.deep_bytes_copied,
                                               std::memory_order_relaxed);
  counters.publish_nanos.fetch_add(publish_timer.ElapsedNanos(),
                                   std::memory_order_relaxed);
  core_.Publish(std::move(snap));
}

}  // namespace stl
