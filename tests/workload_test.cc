#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "workload/query_workload.h"
#include "workload/update_workload.h"

namespace stl {
namespace {

TEST(DatasetsTest, RegistryHasTenIncreasingDatasets) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all.front().name, "NY-S");
  EXPECT_EQ(all.back().name, "EUR-S");
  for (size_t i = 0; i + 2 < all.size(); ++i) {  // EUR-S < USA-S, as in paper
    EXPECT_LT(all[i].width * all[i].height,
              all[i + 1].width * all[i + 1].height);
  }
}

TEST(DatasetsTest, ScaleSelectsPrefix) {
  EXPECT_EQ(DatasetsForScale(BenchScale::kSmall).size(), 4u);
  EXPECT_EQ(DatasetsForScale(BenchScale::kMedium).size(), 7u);
  EXPECT_EQ(DatasetsForScale(BenchScale::kLarge).size(), 10u);
}

TEST(DatasetsTest, LoadIsDeterministicAndConnected) {
  const auto& spec = AllDatasets()[0];
  Graph a = LoadDataset(spec);
  Graph b = LoadDataset(spec);
  EXPECT_EQ(a.NumVertices(), b.NumVertices());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_TRUE(IsConnected(a));
}

TEST(QueryWorkloadTest, RandomPairsInRange) {
  Graph g = testing_util::SmallRoadNetwork(10, 1);
  auto pairs = RandomQueryPairs(g, 500, 7);
  ASSERT_EQ(pairs.size(), 500u);
  for (auto [s, t] : pairs) {
    EXPECT_LT(s, g.NumVertices());
    EXPECT_LT(t, g.NumVertices());
  }
  // Deterministic.
  auto pairs2 = RandomQueryPairs(g, 500, 7);
  EXPECT_EQ(pairs, pairs2);
}

TEST(QueryWorkloadTest, ApproximateDiameterSane) {
  Graph g = GeneratePath(50, 10);
  EXPECT_EQ(ApproximateDiameter(g), 490u);  // exact on a path
}

TEST(QueryWorkloadTest, StratifiedSetsRespectBuckets) {
  Graph g = testing_util::SmallRoadNetwork(14, 2);
  auto sets = StratifiedQuerySets(g, 60, 3);
  ASSERT_EQ(sets.size(), 10u);
  const Weight lmax = ApproximateDiameter(g);
  const double lmin = std::max(1.0, lmax / 1024.0);
  const double x = std::pow(lmax / lmin, 0.1);
  Dijkstra dij(g);
  int nonempty = 0;
  for (int b = 0; b < 10; ++b) {
    if (sets[b].empty()) continue;
    ++nonempty;
    double hi = lmin * std::pow(x, b + 1);
    double lo = b == 0 ? 0 : lmin * std::pow(x, b);
    for (auto [s, t] : sets[b]) {
      double d = dij.Distance(s, t);
      EXPECT_GT(d, 0.0);
      EXPECT_LE(d, hi * 1.0001) << "bucket " << b;
      EXPECT_GT(d, lo * 0.9999 - 1) << "bucket " << b;
    }
  }
  // Small graphs cannot fill the shortest buckets fully, but most buckets
  // must be populated.
  EXPECT_GE(nonempty, 7);
}

TEST(UpdateWorkloadTest, SampleDistinctEdges) {
  Graph g = testing_util::SmallRoadNetwork(10, 4);
  auto edges = SampleDistinctEdges(g, 50, 11);
  ASSERT_EQ(edges.size(), 50u);
  std::set<EdgeId> uniq(edges.begin(), edges.end());
  EXPECT_EQ(uniq.size(), edges.size());
  // Clamped when asking for more than m.
  auto all = SampleDistinctEdges(g, g.NumEdges() + 100, 11);
  EXPECT_EQ(all.size(), g.NumEdges());
}

TEST(UpdateWorkloadTest, IncreaseBatchDoublesAndRestores) {
  Graph g = testing_util::SmallRoadNetwork(8, 5);
  Graph original = g;
  auto edges = SampleDistinctEdges(g, 30, 13);
  UpdateBatch inc = MakeIncreaseBatch(g, edges, 2.0);
  ASSERT_EQ(inc.size(), edges.size());
  for (const WeightUpdate& u : inc) {
    EXPECT_TRUE(u.IsIncrease());
    EXPECT_EQ(u.new_weight, std::min<Weight>(u.old_weight * 2,
                                             kMaxEdgeWeight));
  }
  ApplyBatch(&g, inc);
  UpdateBatch dec = MakeRestoreBatch(inc);
  for (const WeightUpdate& u : dec) EXPECT_TRUE(u.IsDecrease());
  ApplyBatch(&g, dec);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(g.EdgeWeight(e), original.EdgeWeight(e));
  }
}

TEST(UpdateWorkloadTest, SplitAndInverse) {
  Graph g = testing_util::SmallRoadNetwork(8, 6);
  UpdateBatch mixed = {
      WeightUpdate{0, g.EdgeWeight(0), g.EdgeWeight(0) + 5},
      WeightUpdate{1, g.EdgeWeight(1), std::max<Weight>(1, g.EdgeWeight(1) - 1)},
      WeightUpdate{2, g.EdgeWeight(2), g.EdgeWeight(2)},
  };
  auto [dec, inc] = SplitByDirection(mixed);
  EXPECT_EQ(inc.size(), 1u);
  EXPECT_LE(dec.size(), 1u);  // no-op dropped; decrease present unless w==1
  UpdateBatch inv = InverseBatch(mixed);
  EXPECT_EQ(inv.size(), mixed.size());
  EXPECT_EQ(inv.front().edge, mixed.back().edge);
  EXPECT_EQ(inv.front().old_weight, mixed.back().new_weight);
}

}  // namespace
}  // namespace stl
