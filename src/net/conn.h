// One framed TCP connection bound to an EventLoop. A Conn is
// ONE-SHOT: it connects (or adopts an accepted fd), carries frames
// until the peer goes away or the stream corrupts, fires on_close
// exactly once, and is then dead — reconnect policy lives a layer up
// (SocketTransport creates a fresh Conn per attempt), which keeps the
// state machine here small: Connecting -> Open -> Closed, no cycles.
//
// All methods are loop-thread only. The read path re-segments the
// byte stream with DecodeFrame's retry-on-incomplete contract; the
// write path buffers what the kernel would not take and drains it on
// EPOLLOUT. FaultSite::kSocketShortIo (when an injector is armed)
// clamps each I/O to one byte and periodically severs the stream, so
// chaos tests exercise exactly these resumption paths.
#ifndef STL_NET_CONN_H_
#define STL_NET_CONN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/fault_injector.h"
#include "net/event_loop.h"
#include "net/frame.h"

namespace stl {

/// One framed TCP connection (see file comment). Create via Connect()
/// or Adopt(); shared_ptr-owned because callbacks posted to the loop
/// must keep the object alive until the close settles.
class Conn : public std::enable_shared_from_this<Conn> {
 public:
  /// Lifecycle and data callbacks, all invoked on the loop thread.
  struct Callbacks {
    /// The connect handshake finished (never called for Adopt()ed
    /// conns, which are born open).
    std::function<void()> on_connected;
    /// One complete frame was reassembled from the stream.
    std::function<void(WireFrame frame)> on_frame;
    /// The connection is dead (connect failure, peer close, I/O error
    /// or stream corruption). Fired exactly once; the fd is already
    /// closed when it runs. `reason` is a short diagnostic string.
    std::function<void(const std::string& reason)> on_close;
  };

  /// Starts a non-blocking connect to host:port on `loop`'s thread and
  /// returns the (still-Connecting) conn. Resolution failures surface
  /// as an on_close posted to the loop, never as an inline error.
  /// `faults` may be nullptr.
  static std::shared_ptr<Conn> Connect(EventLoop* loop,
                                       const std::string& host,
                                       uint16_t port, Callbacks callbacks,
                                       FaultInjector* faults);

  /// Wraps an already-connected fd (server accept path). Takes fd
  /// ownership; the conn is Open immediately. `faults` may be nullptr.
  static std::shared_ptr<Conn> Adopt(EventLoop* loop, int fd,
                                     Callbacks callbacks,
                                     FaultInjector* faults);

  /// Closes the fd if still open (without firing callbacks: teardown
  /// paths call Shutdown() first when they need the on_close).
  ~Conn();

  Conn(const Conn&) = delete;             ///< Not copyable.
  Conn& operator=(const Conn&) = delete;  ///< Not copyable.

  /// Queues one frame for the peer. While Connecting the bytes buffer
  /// until the handshake completes; after close this is a silent no-op
  /// (the caller already saw on_close). Loop thread only.
  void SendFrame(uint64_t tag, const std::vector<uint8_t>& payload);

  /// Closes immediately without error semantics (teardown path).
  /// on_close still fires with reason "shutdown". Loop thread only.
  void Shutdown();

  /// True once the connect handshake completed and before close.
  bool open() const { return state_ == State::kOpen; }

 private:
  enum class State { kConnecting, kOpen, kClosed };

  Conn(EventLoop* loop, Callbacks callbacks, FaultInjector* faults);

  void StartConnect(const std::string& host, uint16_t port);
  void Register(uint32_t events);
  void OnEvents(uint32_t events);
  void FinishConnect();
  void HandleReadable();
  void HandleWritable();
  void FlushWrites();
  void UpdateInterest();
  void Fail(const std::string& reason);
  /// Applies kSocketShortIo to an intended I/O size: returns the
  /// clamped size, or 0 when this firing severs the connection (the
  /// caller must Fail()).
  size_t ClampIo(size_t want);

  EventLoop* const loop_;
  Callbacks callbacks_;
  FaultInjector* const faults_;

  int fd_ = -1;
  State state_ = State::kConnecting;
  bool registered_ = false;

  std::vector<uint8_t> read_buf_;   // unconsumed stream prefix
  std::vector<uint8_t> write_buf_;  // bytes the kernel has not taken
  size_t write_pos_ = 0;            // drained prefix of write_buf_

  uint64_t short_io_firings_ = 0;  // per-conn: every 8th severs
};

}  // namespace stl

#endif  // STL_NET_CONN_H_
