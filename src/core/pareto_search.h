// Pareto Search maintenance (Section 5.2, Algorithms 3-5): the
// update-centric strategy. Instead of one search per affected ancestor,
// each update triggers exactly two searches, one from each endpoint of
// the updated edge, that track Pareto-optimal (distance, ancestor-level)
// pairs over the subgraph inclusion chain S_0 ⊇ S_1 ⊇ ... (Lemma 5.9).
//
// Queue entries carry an *active interval* of ancestor label positions.
// On popping (d, v, [min,max]):
//   max is clamped to tau(v)   — paths through v are only valid in
//                                subgraphs S_i with i <= tau(v),
//   min is raised to level(v)  — positions already processed for v with a
//                                smaller-or-equal distance are dominated
//                                (Pareto pruning, Definition 5.11),
// and level(v) advances past max. Each surviving position i compares the
// candidate d + L_root[i] against L_v[i]; improving (decrease) or equal
// (increase) positions define the interval propagated to neighbours.
//
// Increase handling follows Algorithm 4-5: affected labels are bumped by
// Delta immediately (a tight upper bound when the increase is small — the
// effect Figure 8 measures), affected intervals are recorded per vertex,
// and a single repair pass (Algorithm 5) settles true values.
//
// Deviation from the paper's pseudocode (documented in DESIGN.md): the
// second search must not re-bump labels the first search already bumped
// when tied shortest paths run through both endpoints. We track bumped
// (vertex, position) pairs per update and test equality against the
// pre-bump value, making the sequential searches exact.
#ifndef STL_CORE_PARETO_SEARCH_H_
#define STL_CORE_PARETO_SEARCH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/label_search.h"
#include "core/labelling.h"
#include "core/tree_hierarchy.h"
#include "graph/updates.h"
#include "util/min_heap.h"

namespace stl {

/// Update-centric maintenance engine (STL-P in the paper's tables).
class ParetoSearch {
 public:
  ParetoSearch(Graph* g, const TreeHierarchy& h, Labelling* labels);

  /// Applies one weight decrease (Algorithm 3). new_weight < current.
  void ApplyDecrease(EdgeId e, Weight new_weight);

  /// Applies one weight increase (Algorithms 4-5). new_weight > current.
  void ApplyIncrease(EdgeId e, Weight new_weight);

  /// Applies a batch update-by-update (Pareto Search is update-centric;
  /// this matches the paper's experimental procedure).
  void ApplyBatch(const UpdateBatch& batch);

  const MaintenanceStats& stats() const { return stats_; }

 private:
  /// One decrease search: candidate paths root -> ... -> v, labels
  /// repaired in place (Algorithm 3 Search-and-Repair).
  void SearchAndRepairDecrease(Vertex root, Vertex start, Weight phi);

  /// One increase detection search with immediate upper-bound bumps
  /// (Algorithm 4 Search); affected intervals accumulate across the two
  /// searches of an update.
  void SearchIncrease(Vertex root, Vertex start, Weight phi, Weight delta);

  /// Settles true values for all affected (vertex, position) pairs
  /// (Algorithm 5 Repair), run once per update after both searches.
  void RepairIncrease();

  void ResetLevels() { ++level_epoch_; }
  uint32_t LevelOf(Vertex v) const {
    return level_stamp_[v] == level_epoch_ ? level_[v] : 0;
  }
  void SetLevel(Vertex v, uint32_t l) {
    level_[v] = l;
    level_stamp_[v] = level_epoch_;
  }

  bool IsBumped(Vertex v, uint32_t i) const {
    return bumped_.count((static_cast<uint64_t>(v) << 32) | i) != 0;
  }
  void MarkBumped(Vertex v, uint32_t i) {
    bumped_.insert((static_cast<uint64_t>(v) << 32) | i);
  }

  void AddAffected(Vertex v, uint32_t i);

  Graph* g_;
  const TreeHierarchy& h_;
  Labelling* labels_;

  ParetoHeap queue_;
  std::vector<uint32_t> level_;        // next unprocessed label position
  std::vector<uint32_t> level_stamp_;
  uint32_t level_epoch_ = 0;

  // Per-update affected bookkeeping (increase only).
  std::unordered_set<uint64_t> bumped_;
  std::vector<uint32_t> aff_min_, aff_max_, aff_stamp_;
  uint32_t aff_epoch_ = 0;
  std::vector<Vertex> aff_list_;
  MinHeap<Weight, uint64_t> repair_heap_;  // payload packs (vertex, pos)

  MaintenanceStats stats_;
};

}  // namespace stl

#endif  // STL_CORE_PARETO_SEARCH_H_
