// Rush-hour simulation: the ride-hailing scenario from the paper's
// introduction. A dispatch service answers driver-passenger distance
// queries continuously while traffic waves congest and release road
// corridors; the STL index absorbs every weight change incrementally.
//
//   $ ./traffic_simulation
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/stl_index.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace stl;

namespace {

/// One congestion wave: a set of roads slows by `factor` for some ticks.
struct Wave {
  UpdateBatch onset;    // increases
  UpdateBatch release;  // restores
  int remaining_ticks;
};

UpdateBatch MakeWave(const Graph& g, Rng* rng, double factor, size_t roads) {
  UpdateBatch batch;
  std::vector<bool> used(g.NumEdges(), false);
  while (batch.size() < roads) {
    EdgeId e = static_cast<EdgeId>(rng->NextBounded(g.NumEdges()));
    if (used[e]) continue;
    used[e] = true;
    Weight w = g.EdgeWeight(e);
    Weight nw = std::min<Weight>(static_cast<Weight>(w * factor),
                                 kMaxEdgeWeight);
    if (nw > w) batch.push_back(WeightUpdate{e, w, nw});
  }
  return batch;
}

}  // namespace

int main() {
  RoadNetworkOptions net;
  net.width = 64;
  net.height = 64;
  net.seed = 7;
  Graph g = GenerateRoadNetwork(net);
  StlIndex index = StlIndex::Build(&g, HierarchyOptions{});
  std::printf("city: %u intersections, index %.2f MB, built in %.2f s\n\n",
              g.NumVertices(), index.MemoryBytes() / 1048576.0,
              index.build_info().total_seconds);

  Rng rng(1234);
  std::vector<Wave> active;
  double update_ms_total = 0, query_us_total = 0;
  uint64_t updates = 0, queries = 0;

  constexpr int kTicks = 30;
  constexpr int kDispatchesPerTick = 2000;
  for (int tick = 0; tick < kTicks; ++tick) {
    // Traffic dynamics: occasionally a new congestion wave starts; old
    // waves expire and their roads recover.
    if (rng.NextBounded(100) < 40) {
      UpdateBatch onset = MakeWave(g, &rng, 2.0 + rng.NextDouble() * 3.0,
                                   30 + rng.NextBounded(50));
      Timer t;
      index.ApplyBatch(onset);
      update_ms_total += t.ElapsedMillis();
      updates += onset.size();
      active.push_back(
          Wave{onset, InverseBatch(onset),
               3 + static_cast<int>(rng.NextBounded(6))});
    }
    for (auto& wave : active) --wave.remaining_ticks;
    for (auto it = active.begin(); it != active.end();) {
      if (it->remaining_ticks <= 0) {
        Timer t;
        index.ApplyBatch(it->release);
        update_ms_total += t.ElapsedMillis();
        updates += it->release.size();
        it = active.erase(it);
      } else {
        ++it;
      }
    }

    // Dispatch: match each passenger with the nearest of 8 candidate
    // drivers by travel time.
    Timer t;
    uint64_t matched = 0;
    for (int d = 0; d < kDispatchesPerTick; ++d) {
      Vertex passenger =
          static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
      Weight best = kInfDistance;
      for (int c = 0; c < 8; ++c) {
        Vertex driver =
            static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
        best = std::min(best, index.Query(passenger, driver));
        ++queries;
      }
      matched += best != kInfDistance;
    }
    query_us_total += t.ElapsedMicros();
    if (tick % 5 == 0) {
      std::printf("tick %2d: %zu active waves, %llu matches\n", tick,
                  active.size(), static_cast<unsigned long long>(matched));
    }
  }

  std::printf("\n--- rush hour summary ---\n");
  std::printf("%llu weight updates, mean %.3f ms/update\n",
              static_cast<unsigned long long>(updates),
              updates ? update_ms_total / updates : 0.0);
  std::printf("%llu distance queries, mean %.3f us/query\n",
              static_cast<unsigned long long>(queries),
              queries ? query_us_total / queries : 0.0);
  return 0;
}
