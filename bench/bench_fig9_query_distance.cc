// Reproduces Figure 9: query time across the distance-stratified query
// sets Q1 (short) .. Q10 (long) for STL, HC2L, and IncH2H.
//
// Expected shape (paper): STL beats IncH2H clearly on long-range sets
// (Q8-Q10: few common ancestors at high levels) and is comparable or
// slower on short-range sets (many common ancestors at low levels); HC2L
// is fastest on short/medium ranges (LCA-node-only hubs).
#include "baselines/h2h.h"
#include "baselines/hc2l.h"
#include "bench/bench_common.h"
#include "core/stl_index.h"
#include "util/table.h"

using namespace stl;

int main() {
  auto cfg = bench::MakeConfig();
  bench::PrintHeader("Figure 9 — query time vs query distance", cfg);
  size_t first = cfg.datasets.size() >= 3 ? cfg.datasets.size() - 3 : 0;
  for (size_t di = first; di < cfg.datasets.size(); ++di) {
    const auto& spec = cfg.datasets[di];
    Graph g_stl = LoadDataset(spec);
    Graph g_h2h = g_stl;
    const Graph g_ref = g_stl;
    StlIndex stl_idx = StlIndex::Build(&g_stl, HierarchyOptions{});
    Hc2lIndex hc2l = Hc2lIndex::Build(g_ref, HierarchyOptions{});
    H2hIndex h2h = H2hIndex::Build(&g_h2h);
    auto sets = StratifiedQuerySets(g_ref, cfg.per_query_set, spec.seed * 3);

    std::printf("(%s) microseconds per query\n", spec.name.c_str());
    TablePrinter table({"set", "pairs", "STL", "HC2L", "IncH2H"});
    for (size_t i = 0; i < sets.size(); ++i) {
      if (sets[i].empty()) continue;
      double stl_us = bench::TimeQueriesMicros(
          sets[i], [&](Vertex s, Vertex t) { return stl_idx.Query(s, t); });
      double hc2l_us = bench::TimeQueriesMicros(
          sets[i], [&](Vertex s, Vertex t) { return hc2l.Query(s, t); });
      double h2h_us = bench::TimeQueriesMicros(
          sets[i], [&](Vertex s, Vertex t) { return h2h.Query(s, t); });
      // Built with += (not operator+) to dodge GCC 12's -Wrestrict
      // false positive on inlined string concatenation (PR 105651).
      std::string set_name = "Q";
      set_name += std::to_string(i + 1);
      table.AddRow({set_name, std::to_string(sets[i].size()),
                    TablePrinter::Fixed(stl_us, 3),
                    TablePrinter::Fixed(hc2l_us, 3),
                    TablePrinter::Fixed(h2h_us, 3)});
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
