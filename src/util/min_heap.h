// Lazy-deletion binary min-heaps used by all Dijkstra-style searches.
//
// Two flavours:
//  * MinHeap<Payload>          — orders (key, payload) by key asc, then
//                                payload asc (deterministic tie-break).
//  * ParetoHeap                — orders (key, level, vertex) by key asc,
//                                then level DESC: the Pareto Search
//                                algorithms must process tuples with the
//                                larger ancestor level first among equal
//                                distances (Section 5.2).
//
// Both are "lazy": stale entries are filtered by the caller via its own
// distance / level arrays, which is the standard idiom for label-correcting
// searches on road networks and avoids decrease-key bookkeeping.
#ifndef STL_UTIL_MIN_HEAP_H_
#define STL_UTIL_MIN_HEAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace stl {

/// Binary min-heap over (key, payload) pairs.
template <typename Key, typename Payload>
class MinHeap {
 public:
  struct Entry {
    Key key;
    Payload payload;
    bool operator<(const Entry& o) const {
      if (key != o.key) return key < o.key;
      return payload < o.payload;
    }
    bool operator>(const Entry& o) const { return o < *this; }
  };

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }
  void reserve(size_t n) { heap_.reserve(n); }

  void Push(Key key, Payload payload) {
    heap_.push_back(Entry{key, payload});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
  }

  const Entry& Top() const {
    STL_DCHECK(!heap_.empty());
    return heap_.front();
  }

  Entry Pop() {
    STL_DCHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
    Entry e = heap_.back();
    heap_.pop_back();
    return e;
  }

 private:
  std::vector<Entry> heap_;
};

/// Heap entry for Pareto searches: (distance, active interval, vertex).
/// Ordered by distance ascending; ties broken by larger interval max first
/// so Pareto-optimal tuples are met before dominated ones (Section 5.2).
struct ParetoEntry {
  uint32_t dist;
  uint32_t min_level;
  uint32_t max_level;
  uint32_t vertex;

  // "Greater" comparator semantics for a min-heap: a is popped before b
  // iff a.dist < b.dist, or equal dist and a.max_level > b.max_level.
  bool PoppedBefore(const ParetoEntry& o) const {
    if (dist != o.dist) return dist < o.dist;
    if (max_level != o.max_level) return max_level > o.max_level;
    if (vertex != o.vertex) return vertex < o.vertex;
    return min_level < o.min_level;
  }
};

/// Binary min-heap with the ParetoEntry ordering.
class ParetoHeap {
 public:
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }

  void Push(const ParetoEntry& e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later);
  }

  ParetoEntry Pop() {
    STL_DCHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    ParetoEntry e = heap_.back();
    heap_.pop_back();
    return e;
  }

 private:
  // std::push_heap builds a max-heap w.r.t. the comparator, so "Later"
  // (i.e. popped-after) ordering yields a min-heap in PoppedBefore order.
  static bool Later(const ParetoEntry& a, const ParetoEntry& b) {
    return b.PoppedBefore(a);
  }

  std::vector<ParetoEntry> heap_;
};

}  // namespace stl

#endif  // STL_UTIL_MIN_HEAP_H_
