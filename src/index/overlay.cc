#include "index/overlay.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "graph/dijkstra.h"
#include "index/distance_index.h"
#include "util/logging.h"
#include "util/min_heap.h"
#include "util/simd.h"

namespace stl {

uint64_t ShardLayout::MemoryBytes() const {
  uint64_t bytes = shard_of_vertex.capacity() * sizeof(uint32_t) +
                   local_of_vertex.capacity() * sizeof(Vertex) +
                   shard_of_edge.capacity() * sizeof(uint32_t) +
                   local_of_edge.capacity() * sizeof(uint32_t) +
                   boundary_pos_of_vertex.capacity() * sizeof(uint32_t) +
                   direct_edges.capacity() * sizeof(DirectEdge);
  for (const Shard& s : shards) {
    bytes += s.to_global.capacity() * sizeof(Vertex) +
             s.edge_to_global.capacity() * sizeof(EdgeId) +
             s.boundary_local.capacity() * sizeof(Vertex) +
             s.boundary_pos.capacity() * sizeof(uint32_t);
  }
  for (const auto& m : memberships) {
    bytes += m.capacity() * sizeof(std::pair<uint32_t, uint32_t>);
  }
  return bytes;
}

ShardPlan BuildShardPlan(const Graph& g, const CellPartition& cells) {
  STL_CHECK_EQ(cells.cell_of.size(), g.NumVertices());
  ShardPlan plan;
  ShardLayout& layout = plan.layout;
  layout.partition = cells;
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  const uint32_t k = cells.num_cells;

  layout.shard_of_vertex = cells.cell_of;
  layout.local_of_vertex.assign(n, UINT32_MAX);
  layout.boundary_pos_of_vertex.assign(n, UINT32_MAX);
  for (uint32_t p = 0; p < cells.boundary.size(); ++p) {
    layout.boundary_pos_of_vertex[cells.boundary[p]] = p;
  }

  layout.shards.resize(k);
  std::vector<std::vector<Edge>> shard_edges(k);
  for (uint32_t c = 0; c < k; ++c) {
    ShardLayout::Shard& shard = layout.shards[c];
    shard.num_cell_vertices = static_cast<uint32_t>(cells.cells[c].size());
    shard.to_global = cells.cells[c];
    shard.to_global.insert(shard.to_global.end(),
                           cells.cell_boundary[c].begin(),
                           cells.cell_boundary[c].end());
    for (uint32_t local = 0; local < shard.to_global.size(); ++local) {
      const Vertex v = shard.to_global[local];
      if (cells.cell_of[v] != CellPartition::kBoundaryCell) {
        layout.local_of_vertex[v] = local;
      }
    }
    shard.boundary_local.reserve(cells.cell_boundary[c].size());
    shard.boundary_pos.reserve(cells.cell_boundary[c].size());
    for (uint32_t i = 0; i < cells.cell_boundary[c].size(); ++i) {
      shard.boundary_local.push_back(shard.num_cell_vertices + i);
      shard.boundary_pos.push_back(
          layout.boundary_pos_of_vertex[cells.cell_boundary[c][i]]);
    }
  }

  // Boundary vertices appear in several shards; resolve their per-shard
  // local id through a scratch map rebuilt per shard below. (Cell
  // vertices use layout.local_of_vertex directly.)
  std::vector<Vertex> local_in_shard(n, UINT32_MAX);

  layout.shard_of_edge.assign(m, ShardLayout::kOverlayShard);
  layout.local_of_edge.assign(m, UINT32_MAX);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& edge = g.GetEdge(e);
    const uint32_t cu = cells.cell_of[edge.u];
    const uint32_t cv = cells.cell_of[edge.v];
    if (cu == CellPartition::kBoundaryCell &&
        cv == CellPartition::kBoundaryCell) {
      // Overlay-owned: both endpoints on the boundary.
      layout.local_of_edge[e] =
          static_cast<uint32_t>(layout.direct_edges.size());
      layout.direct_edges.push_back(ShardLayout::DirectEdge{
          layout.boundary_pos_of_vertex[edge.u],
          layout.boundary_pos_of_vertex[edge.v], e});
      continue;
    }
    STL_CHECK(cu == cv || cu == CellPartition::kBoundaryCell ||
              cv == CellPartition::kBoundaryCell)
        << "cell partition is not a separator: edge " << edge.u << "-"
        << edge.v;
    const uint32_t owner = cu != CellPartition::kBoundaryCell ? cu : cv;
    layout.shard_of_edge[e] = owner;
    layout.local_of_edge[e] =
        static_cast<uint32_t>(shard_edges[owner].size());
    shard_edges[owner].push_back(edge);  // endpoints remapped below
    layout.shards[owner].edge_to_global.push_back(e);
  }

  // Build each shard's subgraph with locally renumbered endpoints.
  plan.shard_graphs.reserve(k);
  for (uint32_t c = 0; c < k; ++c) {
    ShardLayout::Shard& shard = layout.shards[c];
    for (uint32_t local = 0; local < shard.to_global.size(); ++local) {
      local_in_shard[shard.to_global[local]] = local;
    }
    std::vector<Edge> local_edges;
    local_edges.reserve(shard_edges[c].size());
    for (const Edge& edge : shard_edges[c]) {
      local_edges.push_back(Edge{local_in_shard[edge.u],
                                 local_in_shard[edge.v], edge.w});
    }
    Result<Graph> sub = Graph::FromEdges(
        static_cast<uint32_t>(shard.to_global.size()),
        std::move(local_edges));
    STL_CHECK(sub.ok()) << "shard " << c
                        << " subgraph: " << sub.status().ToString();
    plan.shard_graphs.push_back(std::move(sub).value());
    for (Vertex v : shard.to_global) local_in_shard[v] = UINT32_MAX;
  }
  // FromEdges keeps the edge order it was given, so local edge ids
  // assigned above line up with edge_to_global.
  for (uint32_t c = 0; c < k; ++c) {
    STL_CHECK_EQ(layout.shards[c].edge_to_global.size(),
                 plan.shard_graphs[c].NumEdges());
  }

  layout.memberships.assign(cells.boundary.size(), {});
  for (uint32_t c = 0; c < k; ++c) {
    const ShardLayout::Shard& shard = layout.shards[c];
    for (uint32_t i = 0; i < shard.boundary_pos.size(); ++i) {
      layout.memberships[shard.boundary_pos[i]].emplace_back(c, i);
    }
  }
  return plan;
}

uint32_t FillShardBoundaryRow(const ShardLayout& layout, uint32_t shard,
                              const IndexView& view, Vertex global,
                              std::vector<Weight>* out) {
  const ShardLayout::Shard& sh = layout.shards[shard];
  const uint32_t width = static_cast<uint32_t>(sh.boundary_local.size());
  out->resize(width);
  const Vertex local = layout.local_of_vertex[global];
  for (uint32_t i = 0; i < width; ++i) {
    (*out)[i] = view.Query(local, sh.boundary_local[i]);
  }
  return width;
}

// -------------------------------------------------------- OverlayTable

uint64_t OverlayTable::MemoryBytes() const {
  uint64_t bytes = rows_.MemoryBytes();
  for (const PackedBlock& blk : packed_) bytes += blk.rows.MemoryBytes();
  bytes += packed_.capacity() * sizeof(PackedBlock);
  return bytes;
}

uint64_t OverlayTable::AddResidentBytes(
    std::unordered_set<const void*>* seen) const {
  uint64_t bytes = rows_.AddResidentBytes(seen);
  for (const PackedBlock& blk : packed_) {
    bytes += blk.rows.AddResidentBytes(seen);
  }
  bytes += packed_.capacity() * sizeof(PackedBlock);
  return bytes;
}

void OverlayTable::MinPlusRowsInto(uint32_t s, const uint32_t* rows,
                                   uint32_t nrows, const Weight* b,
                                   Weight* out) const {
  STL_DCHECK(s < packed_.size());
  const PackedBlock& blk = packed_[s];
  const uint32_t width = blk.width;
  for (uint32_t i = 0; i < nrows; ++i) {
    STL_DCHECK(rows[i] < n_);
    out[i] = MinPlusReduce(blk.rows.Data(rows[i]), b, width);
  }
}

// ----------------------------------------------------- BoundaryOverlay

namespace {

using DirectAdjacency = std::vector<std::vector<std::pair<uint32_t, Weight>>>;

// One-source Dijkstra over the combined overlay search graph. Reusable
// across sources (stamp/epoch trick) — both the from-scratch rebuild
// and the row repair run through this, so the two paths cannot
// disagree on per-row values.
class OverlaySearch {
 public:
  explicit OverlaySearch(const DirectAdjacency& adj)
      : adj_(adj), dist_(adj.size()), stamp_(adj.size(), 0) {}

  // Fills row[0..n) with exact distances from src (kInfDistance where
  // unreached).
  void Run(uint32_t src, Weight* row) {
    const uint32_t n = static_cast<uint32_t>(dist_.size());
    std::fill(row, row + n, kInfDistance);
    ++epoch_;
    heap_.clear();
    auto relax = [&](uint32_t v, Weight d) {
      if (stamp_[v] != epoch_ || d < dist_[v]) {
        stamp_[v] = epoch_;
        dist_[v] = d;
        heap_.Push(d, v);
      }
    };
    relax(src, 0);
    while (!heap_.empty()) {
      const auto top = heap_.Pop();
      const uint32_t u = top.payload;
      if (top.key != dist_[u] || stamp_[u] != epoch_) continue;
      row[u] = top.key;
      for (const auto& [v, w] : adj_[u]) {
        if (stamp_[v] == epoch_ && dist_[v] <= top.key + w) continue;
        relax(v, top.key + w);
      }
    }
  }

 private:
  const DirectAdjacency& adj_;
  std::vector<Weight> dist_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  MinHeap<Weight, uint32_t> heap_;
};

}  // namespace

BoundaryOverlay::BoundaryOverlay(const ShardLayout* layout, const Graph& g)
    : layout_(layout) {
  STL_CHECK(layout != nullptr);
  direct_weight_.reserve(layout->direct_edges.size());
  for (const ShardLayout::DirectEdge& de : layout->direct_edges) {
    direct_weight_.push_back(g.EdgeWeight(de.global_edge));
  }
  direct_touch_stamp_.assign(layout->direct_edges.size(), 0);
  clique_.resize(layout->num_shards());
  clique_published_.resize(layout->num_shards());
  clique_dirty_.assign(layout->num_shards(), 0);
}

void BoundaryOverlay::SetDirectWeight(uint32_t direct_slot, Weight w) {
  STL_CHECK_LT(direct_slot, direct_weight_.size());
  // First touch this publish cycle records the published weight, so a
  // later Publish sees the true old->new delta even across repeated
  // writes (including writes that revert in place and drop out).
  if (direct_touch_stamp_[direct_slot] != publish_seq_) {
    direct_touch_stamp_[direct_slot] = publish_seq_;
    pending_direct_.emplace_back(direct_slot, direct_weight_[direct_slot]);
  }
  direct_weight_[direct_slot] = w;
}

void BoundaryOverlay::RebuildClique(uint32_t s, const Graph& shard_graph,
                                    OverlayExecutor* executor) {
  STL_CHECK_LT(s, clique_.size());
  const ShardLayout::Shard& shard = layout_->shards[s];
  const uint32_t w = static_cast<uint32_t>(shard.boundary_local.size());
  std::vector<Weight> fresh(static_cast<size_t>(w) * w, 0);
  if (w > 0) {
    // One full Dijkstra per boundary source over the shard subgraph.
    // Every backend's ApplyBatch writes new weights into this graph, so
    // the rows equal the shard index's exact point-to-point answers.
    // Workers claim sources from a shared counter and write disjoint
    // rows; the executor joins them before Run returns.
    std::atomic<uint32_t> next{0};
    auto worker = [&]() {
      Dijkstra dij(shard_graph);
      for (;;) {
        const uint32_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= w) break;
        const std::vector<Weight>& dist =
            dij.AllDistances(shard.boundary_local[i]);
        Weight* row = fresh.data() + static_cast<size_t>(i) * w;
        for (uint32_t j = 0; j < w; ++j) {
          row[j] = std::min(dist[shard.boundary_local[j]], kInfDistance);
        }
        row[i] = 0;
      }
    };
    if (executor != nullptr && w > 1 && executor->Width() > 1) {
      executor->Run(worker);
    } else {
      worker();
    }
  }
  InstallClique(s, w, std::move(fresh));
}

void BoundaryOverlay::RebuildClique(uint32_t s, const IndexView& view,
                                    OverlayExecutor* executor) {
  STL_CHECK_LT(s, clique_.size());
  const ShardLayout::Shard& shard = layout_->shards[s];
  const uint32_t w = static_cast<uint32_t>(shard.boundary_local.size());
  std::vector<Weight> fresh(static_cast<size_t>(w) * w, 0);
  if (w > 1) {
    // One point query per unordered pair against the shard's published
    // epoch. Each worker owns every pair of its claimed source i (the
    // i-th row's upper triangle plus the mirrored column entries), so
    // concurrent workers write disjoint matrix cells.
    std::atomic<uint32_t> next{0};
    auto worker = [&]() {
      for (;;) {
        const uint32_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= w) break;
        Weight* row = fresh.data() + static_cast<size_t>(i) * w;
        for (uint32_t j = i + 1; j < w; ++j) {
          const Weight d = std::min(
              view.Query(shard.boundary_local[i], shard.boundary_local[j]),
              kInfDistance);
          row[j] = d;
          fresh[static_cast<size_t>(j) * w + i] = d;
        }
      }
    };
    // Point queries are so cheap that fanning out only pays once the
    // pair count dwarfs the enqueue/join round-trip; below that the
    // writer finishes faster alone.
    constexpr uint32_t kMinSourcesForFanOut = 32;
    if (executor != nullptr && executor->Width() > 1 &&
        w >= kMinSourcesForFanOut) {
      executor->Run(worker);
    } else {
      worker();
    }
  }
  InstallClique(s, w, std::move(fresh));
}

const std::vector<std::vector<std::pair<uint32_t, Weight>>>&
BoundaryOverlay::SearchAdjacency() {
  const uint32_t n = layout_->num_boundary();
  search_adj_.resize(n);
  for (auto& arcs : search_adj_) arcs.clear();  // keeps capacity
  adj_stamp_.assign(n, UINT32_MAX);
  adj_slot_.resize(n);
  // Direct S–S arcs first (registered for min-combining below).
  for (uint32_t i = 0; i < layout_->direct_edges.size(); ++i) {
    const ShardLayout::DirectEdge& de = layout_->direct_edges[i];
    const Weight w = direct_weight_[i];
    if (w >= kInfDistance) continue;
    search_adj_[de.a_pos].emplace_back(de.b_pos, w);
    search_adj_[de.b_pos].emplace_back(de.a_pos, w);
  }
  for (uint32_t u = 0; u < n; ++u) {
    auto& out = search_adj_[u];
    for (uint32_t i = 0; i < out.size(); ++i) {
      const uint32_t v = out[i].first;
      if (adj_stamp_[v] != u) {
        adj_stamp_[v] = u;
        adj_slot_[v] = i;
      }
    }
    auto add = [&](uint32_t v, Weight w) {
      if (v == u || w >= kInfDistance) return;
      if (adj_stamp_[v] != u) {
        adj_stamp_[v] = u;
        adj_slot_[v] = static_cast<uint32_t>(out.size());
        out.emplace_back(v, w);
      } else if (w < out[adj_slot_[v]].second) {
        out[adj_slot_[v]].second = w;  // parallel arc: keep the cheapest
      }
    };
    for (const auto& [s, idx] : layout_->memberships[u]) {
      const ShardLayout::Shard& shard = layout_->shards[s];
      const uint32_t width =
          static_cast<uint32_t>(shard.boundary_pos.size());
      STL_DCHECK(clique_[s].size() == static_cast<size_t>(width) * width);
      const Weight* crow =
          clique_[s].data() + static_cast<size_t>(idx) * width;
      for (uint32_t j = 0; j < width; ++j) {
        add(shard.boundary_pos[j], crow[j]);
      }
    }
  }
  return search_adj_;
}

void BoundaryOverlay::InstallClique(uint32_t s, uint32_t w,
                                    std::vector<Weight> fresh) {
  STL_CHECK(clique_[s].empty() ||
            clique_[s].size() == static_cast<size_t>(w) * w);
  clique_[s] = std::move(fresh);
  pending_clique_entries_ +=
      static_cast<uint64_t>(w) * (w > 0 ? w - 1 : 0) / 2;
  if (!clique_dirty_[s]) {
    clique_dirty_[s] = 1;
    dirty_shards_.push_back(s);
  }
}

void BoundaryOverlay::OverrideCliqueEntryForTest(uint32_t s, uint32_t i,
                                                uint32_t j, Weight w) {
  STL_CHECK_LT(s, clique_.size());
  const uint32_t width =
      static_cast<uint32_t>(layout_->shards[s].boundary_local.size());
  STL_CHECK(i < width && j < width && i != j);
  STL_CHECK_EQ(clique_[s].size(), static_cast<size_t>(width) * width);
  clique_[s][static_cast<size_t>(i) * width + j] = w;
  clique_[s][static_cast<size_t>(j) * width + i] = w;
  if (!clique_dirty_[s]) {
    clique_dirty_[s] = 1;
    dirty_shards_.push_back(s);
  }
}

std::shared_ptr<const OverlayTable> BoundaryOverlay::Publish(
    bool allow_repair, OverlayPublishStats* stats) {
  OverlayPublishStats st;
  const uint32_t n = layout_->num_boundary();
  st.rows_total = n;
  st.clique_entries_recomputed = pending_clique_entries_;
  pending_clique_entries_ = 0;

  // Materialise the overlay-edge changes accumulated since the last
  // publish. Clique changes diff the current cliques against their
  // published shadow, so repeated rebuilds of one shard coalesce into
  // one old->new record per entry; direct edges use their first-touch
  // records the same way.
  std::vector<ChangedEdge> changes;
  bool diffable = true;
  for (uint32_t s : dirty_shards_) {
    const ShardLayout::Shard& shard = layout_->shards[s];
    const uint32_t width =
        static_cast<uint32_t>(shard.boundary_local.size());
    const std::vector<Weight>& cur = clique_[s];
    std::vector<Weight>& pub = clique_published_[s];
    if (pub.size() != cur.size()) {
      diffable = false;  // first build of this shard: nothing to diff
    } else {
      for (uint32_t i = 0; i < width; ++i) {
        for (uint32_t j = i + 1; j < width; ++j) {
          const Weight ov = pub[static_cast<size_t>(i) * width + j];
          const Weight nv = cur[static_cast<size_t>(i) * width + j];
          if (ov != nv) {
            changes.push_back(ChangedEdge{shard.boundary_pos[i],
                                          shard.boundary_pos[j], ov, nv});
          }
        }
      }
    }
    pub = cur;
    clique_dirty_[s] = 0;
  }
  dirty_shards_.clear();
  for (const auto& [slot, old_w] : pending_direct_) {
    if (direct_weight_[slot] == old_w) continue;  // reverted in place
    const ShardLayout::DirectEdge& de = layout_->direct_edges[slot];
    changes.push_back(
        ChangedEdge{de.a_pos, de.b_pos, old_w, direct_weight_[slot]});
  }
  pending_direct_.clear();
  ++publish_seq_;

  std::shared_ptr<const OverlayTable> table;
  if (allow_repair && diffable && last_ != nullptr && last_->n_ == n) {
    table = Repair(changes, &st);
  }
  if (table == nullptr) table = FullRebuild(&st);
  last_ = table;
  if (stats != nullptr) *stats = st;
  return table;
}

std::shared_ptr<const OverlayTable> BoundaryOverlay::FullRebuild(
    OverlayPublishStats* st) {
  auto table = std::make_shared<OverlayTable>();
  const uint32_t n = layout_->num_boundary();
  const uint32_t k = layout_->num_shards();
  table->n_ = n;
  table->rows_.Reserve(n);
  table->packed_.resize(k);
  for (uint32_t s = 0; s < k; ++s) {
    table->packed_[s].width =
        static_cast<uint32_t>(layout_->shards[s].boundary_pos.size());
    table->packed_[s].rows.Reserve(n);
  }
  if (n > 0) {
    const DirectAdjacency& adj = SearchAdjacency();
    OverlaySearch search(adj);
    std::vector<Weight> row(n);
    for (uint32_t src = 0; src < n; ++src) {
      search.Run(src, row.data());
      table->rows_.Append(row);
      for (uint32_t s = 0; s < k; ++s) {
        const ShardLayout::Shard& shard = layout_->shards[s];
        OverlayTable::PackedBlock& blk = table->packed_[s];
        std::vector<Weight> packed(blk.width);
        for (uint32_t j = 0; j < blk.width; ++j) {
          packed[j] = row[shard.boundary_pos[j]];
        }
        blk.rows.Append(std::move(packed));
      }
    }
  }
  st->full_rebuild = true;
  st->rows_repaired = n;
  st->rows_patched = 0;
  st->rows_shared = 0;
  st->bytes_shared = 0;
  return table;
}

std::shared_ptr<const OverlayTable> BoundaryOverlay::Repair(
    const std::vector<ChangedEdge>& changes, OverlayPublishStats* st) {
  const uint32_t n = layout_->num_boundary();
  uint64_t row_payload = static_cast<uint64_t>(n) * sizeof(Weight);
  for (uint32_t s = 0; s < layout_->num_shards(); ++s) {
    row_payload += layout_->shards[s].boundary_pos.size() * sizeof(Weight);
  }
  if (changes.empty()) {
    // Clean batch (shard-internal updates that left every
    // boundary-to-boundary distance alone): re-share the whole table.
    auto table = std::make_shared<OverlayTable>(*last_);
    st->rows_shared = n;
    st->bytes_shared = static_cast<uint64_t>(n) * row_payload;
    return table;
  }

  // Dirty-source set R, built asymmetrically:
  //
  //   decreases — both endpoints join R as ANCHORS: new shortest paths
  //     can newly route through a cheapened edge, and the patch below
  //     reaches every such path by splitting it at an endpoint. No
  //     per-row test is needed for the rest.
  //   increases — row a joins R iff some old shortest path from a used
  //     an increased edge, detected by old-table tightness:
  //     D_old[a][u] + w_old == D_old[a][v] (either orientation),
  //     because shortest-path prefixes are shortest paths. An increased
  //     edge tight from NO row was on no shortest path, and paths
  //     through it only got worse — it cannot change any distance, so
  //     (unlike decreases) its endpoints need no unconditional re-run.
  //
  // A pure-increase batch therefore has no anchors at all: tagged rows
  // re-run, every other row is provably byte-stable and just shares.
  std::vector<uint8_t> in_r(n, 0);
  std::vector<uint32_t> anchors;
  std::vector<const ChangedEdge*> increases;
  for (const ChangedEdge& ce : changes) {
    if (ce.new_w > ce.old_w) {
      increases.push_back(&ce);
      continue;
    }
    for (const uint32_t p : {ce.a_pos, ce.b_pos}) {
      if (!in_r[p]) {
        in_r[p] = 1;
        anchors.push_back(p);
      }
    }
  }
  std::vector<uint32_t> dirty_rows = anchors;
  if (!increases.empty()) {
    for (uint32_t a = 0; a < n; ++a) {
      if (in_r[a]) continue;
      const Weight* row = last_->rows_.Data(a);
      for (const ChangedEdge* ce : increases) {
        const uint64_t du = row[ce->a_pos];
        const uint64_t dv = row[ce->b_pos];
        const uint64_t w = ce->old_w;
        if (du + w == dv || dv + w == du) {
          in_r[a] = 1;
          dirty_rows.push_back(a);
          break;
        }
      }
    }
  }
  if (static_cast<double>(dirty_rows.size()) >
      repair_threshold_ * static_cast<double>(n)) {
    return nullptr;  // repair would touch too much; rebuild instead
  }

  auto table = std::make_shared<OverlayTable>(*last_);
  const DirectAdjacency& adj = SearchAdjacency();
  OverlaySearch search(adj);
  std::vector<Weight> scratch(n);
  uint64_t rows_rewritten = 0;
  for (const uint32_t r : dirty_rows) {
    search.Run(r, scratch.data());
    if (std::memcmp(scratch.data(), table->rows_.Data(r),
                    static_cast<size_t>(n) * sizeof(Weight)) != 0) {
      WriteRow(table.get(), r, scratch.data());
      ++rows_rewritten;
    }
  }
  st->rows_repaired = dirty_rows.size();

  // Patch every remaining row a exactly:
  //   D_new[a][b] = min(D_old[a][b], min_{u in anchors} D'[u][a] + D'[u][b])
  // Upper bound: a is untagged, so every old shortest path from a
  // avoids every increased edge; such a path only got cheaper under
  // the batch, so D_new <= D_old — and the anchor candidates are real
  // path lengths. Lower bound: a new shortest path either avoids all
  // changed edges (old length, >= D_old[a][b]), or routes through a
  // decreased edge, where splitting at that edge's endpoint u (an
  // anchor) gives D'[u][a] + D'[u][b]; using only increased edges is
  // impossible for an untagged row — the same path was cheaper before
  // the batch, so it would contradict D_old's optimality. Anchor rows
  // were re-run above, so D' is exact new distances.
  if (!anchors.empty()) {
    std::vector<const Weight*> anchor_rows;
    anchor_rows.reserve(anchors.size());
    for (const uint32_t u : anchors) {
      anchor_rows.push_back(table->rows_.Data(u));
    }
    for (uint32_t a = 0; a < n; ++a) {
      if (in_r[a]) continue;
      std::memcpy(scratch.data(), table->rows_.Data(a),
                  static_cast<size_t>(n) * sizeof(Weight));
      bool changed = false;
      for (size_t ui = 0; ui < anchors.size(); ++ui) {
        const Weight cu = anchor_rows[ui][a];
        if (cu >= kInfDistance) continue;
        const Weight* ru = anchor_rows[ui];
        for (uint32_t b = 0; b < n; ++b) {
          // cu + ru[b] <= 2 * kInfDistance: no uint32 wrap, and any
          // candidate involving an unreachable leg stays >= kInfDistance
          // so it never undercuts a real entry.
          const Weight cand = cu + ru[b];
          if (cand < scratch[b]) {
            scratch[b] = cand;
            changed = true;
          }
        }
      }
      if (changed) {
        WriteRow(table.get(), a, scratch.data());
        ++st->rows_patched;
        ++rows_rewritten;
      }
    }
  }
  st->rows_shared = n - rows_rewritten;
  st->bytes_shared = st->rows_shared * row_payload;
  return table;
}

void BoundaryOverlay::WriteRow(OverlayTable* table, uint32_t r,
                               const Weight* values) {
  const uint32_t n = table->n_;
  std::memcpy(table->rows_.Writable(r), values,
              static_cast<size_t>(n) * sizeof(Weight));
  for (uint32_t s = 0; s < table->packed_.size(); ++s) {
    const ShardLayout::Shard& shard = layout_->shards[s];
    OverlayTable::PackedBlock& blk = table->packed_[s];
    Weight* out = blk.rows.Writable(r);
    for (uint32_t j = 0; j < blk.width; ++j) {
      out[j] = values[shard.boundary_pos[j]];
    }
  }
}

uint64_t BoundaryOverlay::MemoryBytes() const {
  uint64_t bytes = direct_weight_.capacity() * sizeof(Weight) +
                   direct_touch_stamp_.capacity() * sizeof(uint32_t) +
                   pending_direct_.capacity() *
                       sizeof(std::pair<uint32_t, Weight>) +
                   clique_dirty_.capacity() +
                   dirty_shards_.capacity() * sizeof(uint32_t);
  for (const auto& c : clique_) bytes += c.capacity() * sizeof(Weight);
  for (const auto& c : clique_published_) {
    bytes += c.capacity() * sizeof(Weight);
  }
  for (const auto& arcs : search_adj_) {
    bytes += arcs.capacity() * sizeof(std::pair<uint32_t, Weight>);
  }
  bytes += (adj_stamp_.capacity() + adj_slot_.capacity()) * sizeof(uint32_t);
  return bytes;
}

}  // namespace stl
