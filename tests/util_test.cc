#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dist/socket_transport.h"
#include "dist/wire.h"
#include "util/min_heap.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/table.h"

namespace stl {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng base(42);
  Rng a = base.Fork(1);
  Rng b = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
  // Forking with the same id from the same state is reproducible.
  Rng base2(42);
  Rng a2 = base2.Fork(1);
  Rng base3(42);
  Rng a3 = base3.Fork(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a2.Next(), a3.Next());
}

TEST(MinHeapTest, PopsInKeyOrder) {
  MinHeap<uint32_t, uint32_t> h;
  const uint32_t keys[] = {5, 1, 9, 1, 7, 0, 3};
  for (uint32_t k : keys) h.Push(k, 100 + k);
  uint32_t prev = 0;
  size_t count = 0;
  while (!h.empty()) {
    auto [k, v] = h.Pop();
    EXPECT_GE(k, prev);
    EXPECT_EQ(v, 100 + k);
    prev = k;
    ++count;
  }
  EXPECT_EQ(count, 7u);
}

TEST(MinHeapTest, TieBreaksByPayload) {
  MinHeap<uint32_t, uint32_t> h;
  h.Push(4, 30);
  h.Push(4, 10);
  h.Push(4, 20);
  EXPECT_EQ(h.Pop().payload, 10u);
  EXPECT_EQ(h.Pop().payload, 20u);
  EXPECT_EQ(h.Pop().payload, 30u);
}

TEST(ParetoHeapTest, DistanceAscThenLevelDesc) {
  // Equal distance: the entry with LARGER max_level pops first
  // (Section 5.2: Pareto-optimal tuples met before dominated ones).
  ParetoHeap h;
  h.Push(ParetoEntry{10, 0, 2, 1});
  h.Push(ParetoEntry{10, 0, 7, 2});
  h.Push(ParetoEntry{5, 0, 1, 3});
  h.Push(ParetoEntry{10, 0, 4, 4});
  EXPECT_EQ(h.Pop().vertex, 3u);  // smallest distance first
  EXPECT_EQ(h.Pop().vertex, 2u);  // then max_level 7
  EXPECT_EQ(h.Pop().vertex, 4u);  // then 4
  EXPECT_EQ(h.Pop().vertex, 1u);  // then 2
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Name", "Value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "234"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header line and rule line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterDeathTest, RowWidthMismatchDies) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "row width mismatch");
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Bytes(512), "512.00 B");
  EXPECT_EQ(TablePrinter::Bytes(2048), "2.00 KB");
  EXPECT_EQ(TablePrinter::Bytes(3ull << 30), "3.00 GB");
  EXPECT_EQ(TablePrinter::Count(42), "42");
  EXPECT_EQ(TablePrinter::Count(1500), "1.50 K");
  EXPECT_EQ(TablePrinter::Count(2500000), "2.50 M");
  EXPECT_EQ(TablePrinter::Count(9200000000ull), "9.20 B");
}

TEST(SerializeTest, PodAndVectorRoundTrip) {
  const std::string path = TempPath("ser_roundtrip.bin");
  std::vector<uint32_t> vec = {1, 2, 3, 0xffffffffu};
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0xabcd1234, 3).ok());
    ASSERT_TRUE(w.WritePod<uint64_t>(77).ok());
    ASSERT_TRUE(w.WriteVector(vec).ok());
    ASSERT_TRUE(w.WriteString("hello").ok());
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  ASSERT_TRUE(r.Open(path, 0xabcd1234, 3).ok());
  EXPECT_EQ(r.version(), 3u);
  uint64_t x = 0;
  ASSERT_TRUE(r.ReadPod(&x).ok());
  EXPECT_EQ(x, 77u);
  std::vector<uint32_t> got;
  ASSERT_TRUE(r.ReadVector(&got).ok());
  EXPECT_EQ(got, vec);
  std::string s;
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(s, "hello");
}

TEST(SerializeTest, BadMagicRejected) {
  const std::string path = TempPath("ser_magic.bin");
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0x11111111, 1).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  Status s = r.Open(path, 0x22222222, 1);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(SerializeTest, NewerVersionRejected) {
  const std::string path = TempPath("ser_version.bin");
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0x33333333, 9).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  Status s = r.Open(path, 0x33333333, 8);
  EXPECT_EQ(s.code(), StatusCode::kNotSupported);
}

TEST(SerializeTest, TruncatedFileIsCorruption) {
  const std::string path = TempPath("ser_trunc.bin");
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0x44444444, 1).ok());
    ASSERT_TRUE(w.WritePod<uint32_t>(5).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  ASSERT_TRUE(r.Open(path, 0x44444444, 1).ok());
  uint64_t too_big = 0;
  EXPECT_TRUE(r.ReadPod(&too_big).ok() == false);
}

TEST(SerializeTest, ImplausibleVectorLengthIsCorruption) {
  const std::string path = TempPath("ser_len.bin");
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path, 0x55555555, 1).ok());
    ASSERT_TRUE(w.WritePod<uint64_t>(UINT64_MAX).ok());  // fake huge length
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  ASSERT_TRUE(r.Open(path, 0x55555555, 1).ok());
  std::vector<uint64_t> v;
  Status s = r.ReadVector(&v);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(SerializeTest, MissingFileIsIOError) {
  BinaryReader r;
  Status s = r.Open(TempPath("does_not_exist.bin"), 1, 1);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

// ------------------------------------------------ shard wire messages

// Requests spanning the value range: both kinds, zero and all-ones
// vertices, and a shard_epoch with every byte distinct (catches
// field-order and endianness slips bitwise).
std::vector<ShardRequest> SampleRequests() {
  ShardRequest row;
  row.kind = WireKind::kBoundaryRow;
  row.shard = 0;
  row.shard_epoch = 0;
  row.u = 0;
  row.v = 0;
  ShardRequest point;
  point.kind = WireKind::kPointQuery;
  point.shard = 0xfffffffeu;
  point.shard_epoch = 0x0123456789abcdefull;
  point.u = 0xffffffffu;
  point.v = 0x80000001u;
  return {row, point};
}

// Responses spanning the value range: served rows (empty, singleton,
// max-plausible with kInfDistance sentinels mixed in) and the
// kUnavailable failure shape.
std::vector<ShardResponse> SampleResponses() {
  std::vector<ShardResponse> out;
  ShardResponse ok;
  ok.code = StatusCode::kOk;
  ok.shard = 3;
  ok.shard_epoch = 7;
  ok.distance = 12345;
  ok.row = {0, 1, kInfDistance, 0x3ffffffeu, 42};
  out.push_back(ok);
  ShardResponse empty_row = ok;
  empty_row.row.clear();
  empty_row.distance = kInfDistance;
  out.push_back(empty_row);
  ShardResponse big = ok;
  big.row.assign(4096, kInfDistance);
  for (size_t i = 0; i < big.row.size(); i += 3) {
    big.row[i] = static_cast<Weight>(i);
  }
  out.push_back(big);
  ShardResponse unavailable;
  unavailable.code = StatusCode::kUnavailable;
  unavailable.shard = 0xffffffffu;
  unavailable.shard_epoch = UINT64_MAX;
  unavailable.distance = kInfDistance;
  out.push_back(unavailable);
  return out;
}

TEST(WireTest, ShardRequestRoundTripIsBitwise) {
  for (const ShardRequest& req : SampleRequests()) {
    const std::vector<uint8_t> bytes = req.Encode();
    ShardRequest got;
    ASSERT_TRUE(ShardRequest::Decode(bytes.data(), bytes.size(), &got).ok());
    EXPECT_EQ(got.kind, req.kind);
    EXPECT_EQ(got.shard, req.shard);
    EXPECT_EQ(got.shard_epoch, req.shard_epoch);
    EXPECT_EQ(got.u, req.u);
    EXPECT_EQ(got.v, req.v);
    // Re-encoding the decoded message reproduces the original bytes:
    // the codec is bijective on its message set.
    EXPECT_EQ(got.Encode(), bytes);
  }
}

TEST(WireTest, ShardResponseRoundTripIsBitwise) {
  for (const ShardResponse& resp : SampleResponses()) {
    const std::vector<uint8_t> bytes = resp.Encode();
    ShardResponse got;
    ASSERT_TRUE(
        ShardResponse::Decode(bytes.data(), bytes.size(), &got).ok());
    EXPECT_EQ(got.code, resp.code);
    EXPECT_EQ(got.shard, resp.shard);
    EXPECT_EQ(got.shard_epoch, resp.shard_epoch);
    EXPECT_EQ(got.distance, resp.distance);
    EXPECT_EQ(got.row, resp.row);
    EXPECT_EQ(got.Encode(), bytes);
  }
}

TEST(WireTest, EveryTruncatedPrefixIsRejected) {
  for (const ShardRequest& req : SampleRequests()) {
    const std::vector<uint8_t> bytes = req.Encode();
    for (size_t len = 0; len < bytes.size(); ++len) {
      ShardRequest got;
      EXPECT_FALSE(ShardRequest::Decode(bytes.data(), len, &got).ok())
          << "request prefix of " << len << " bytes decoded";
    }
  }
  for (const ShardResponse& resp : SampleResponses()) {
    const std::vector<uint8_t> bytes = resp.Encode();
    for (size_t len = 0; len < bytes.size(); ++len) {
      ShardResponse got;
      EXPECT_FALSE(ShardResponse::Decode(bytes.data(), len, &got).ok())
          << "response prefix of " << len << " bytes decoded";
    }
  }
}

TEST(WireTest, TrailingBytesAreCorruption) {
  std::vector<uint8_t> bytes = SampleRequests()[0].Encode();
  bytes.push_back(0);
  ShardRequest req;
  EXPECT_EQ(ShardRequest::Decode(bytes.data(), bytes.size(), &req).code(),
            StatusCode::kCorruption);
  bytes = SampleResponses()[0].Encode();
  bytes.push_back(0);
  ShardResponse resp;
  EXPECT_EQ(
      ShardResponse::Decode(bytes.data(), bytes.size(), &resp).code(),
      StatusCode::kCorruption);
}

TEST(WireTest, CorruptedHeaderAndFieldsRejected) {
  // Flipped magic: corruption.
  std::vector<uint8_t> bytes = SampleRequests()[0].Encode();
  bytes[0] ^= 0xff;
  ShardRequest req;
  EXPECT_EQ(ShardRequest::Decode(bytes.data(), bytes.size(), &req).code(),
            StatusCode::kCorruption);

  // Version newer than the library: typed version skew, not corruption.
  bytes = SampleRequests()[0].Encode();
  const uint32_t future = kWireVersion + 1;
  std::memcpy(bytes.data() + sizeof(uint32_t), &future, sizeof(uint32_t));
  EXPECT_EQ(ShardRequest::Decode(bytes.data(), bytes.size(), &req).code(),
            StatusCode::kNotSupported);

  // Unknown request kind: corruption.
  bytes = SampleRequests()[0].Encode();
  const uint32_t bad_kind = 99;
  std::memcpy(bytes.data() + 2 * sizeof(uint32_t), &bad_kind,
              sizeof(uint32_t));
  EXPECT_EQ(ShardRequest::Decode(bytes.data(), bytes.size(), &req).code(),
            StatusCode::kCorruption);

  // A response code outside {kOk, kUnavailable}: corruption.
  bytes = SampleResponses()[0].Encode();
  const uint32_t bad_code = 99;
  std::memcpy(bytes.data() + 2 * sizeof(uint32_t), &bad_code,
              sizeof(uint32_t));
  ShardResponse resp;
  EXPECT_EQ(
      ShardResponse::Decode(bytes.data(), bytes.size(), &resp).code(),
      StatusCode::kCorruption);

  // A row length prefix far beyond the buffer: corruption, caught
  // before any allocation.
  bytes = SampleResponses()[0].Encode();
  const uint64_t huge = UINT64_MAX;
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint64_t) -
                  SampleResponses()[0].row.size() * sizeof(Weight),
              &huge, sizeof(uint64_t));
  EXPECT_EQ(
      ShardResponse::Decode(bytes.data(), bytes.size(), &resp).code(),
      StatusCode::kCorruption);
}

// ------------------------------------------------- stream framing

TEST(FrameTest, RoundTripAndConcatenation) {
  const std::vector<uint8_t> p1 = SampleRequests()[1].Encode();
  const std::vector<uint8_t> p2 = SampleResponses()[2].Encode();
  std::vector<uint8_t> stream;
  EncodeFrame(0xdeadbeefcafef00dull, p1, &stream);
  EncodeFrame(42, p2, &stream);
  EncodeFrame(7, {}, &stream);  // empty payload frames are legal

  WireFrame frame;
  size_t consumed = 0;
  ASSERT_TRUE(
      DecodeFrame(stream.data(), stream.size(), &frame, &consumed).ok());
  EXPECT_EQ(frame.tag, 0xdeadbeefcafef00dull);
  EXPECT_EQ(frame.payload, p1);
  size_t off = consumed;
  ASSERT_TRUE(DecodeFrame(stream.data() + off, stream.size() - off, &frame,
                          &consumed)
                  .ok());
  EXPECT_EQ(frame.tag, 42u);
  EXPECT_EQ(frame.payload, p2);
  off += consumed;
  ASSERT_TRUE(DecodeFrame(stream.data() + off, stream.size() - off, &frame,
                          &consumed)
                  .ok());
  EXPECT_EQ(frame.tag, 7u);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(off + consumed, stream.size());
}

TEST(FrameTest, IncompletePrefixIsRetryableNotCorrupt) {
  std::vector<uint8_t> stream;
  EncodeFrame(9, SampleRequests()[0].Encode(), &stream);
  for (size_t len = 0; len < stream.size(); ++len) {
    WireFrame frame;
    size_t consumed = 0xff;
    Status s = DecodeFrame(stream.data(), len, &frame, &consumed);
    EXPECT_EQ(s.code(), StatusCode::kUnavailable)
        << "prefix of " << len << " bytes";
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(FrameTest, ImplausibleLengthIsCorruption) {
  // Body length below the tag size or above the sanity bound: a
  // corrupted stream, not a short read.
  for (uint32_t body : {uint32_t{0}, uint32_t{7}, (1u << 28) + 1}) {
    std::vector<uint8_t> stream(sizeof(uint32_t) + 16, 0);
    std::memcpy(stream.data(), &body, sizeof(uint32_t));
    WireFrame frame;
    size_t consumed = 0xff;
    Status s =
        DecodeFrame(stream.data(), stream.size(), &frame, &consumed);
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "body=" << body;
    EXPECT_EQ(consumed, 0u);
  }
}

}  // namespace
}  // namespace stl
