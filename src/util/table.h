// Plain-text table printer for benchmark harnesses: produces the
// aligned rows the paper's tables report.
#ifndef STL_UTIL_TABLE_H_
#define STL_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stl {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, rule, rows) to a string.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

  // Cell formatting helpers.
  static std::string Fixed(double v, int digits);
  /// Scales a millisecond / microsecond / byte quantity with a unit suffix,
  /// e.g. Bytes(1.3e9) -> "1.21 GB", Count(9.2e9) -> "9.2 B".
  static std::string Bytes(uint64_t bytes);
  static std::string Count(uint64_t count);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stl

#endif  // STL_UTIL_TABLE_H_
