// Sharded query-serving engine: the partition tree machinery that makes
// the paper's hierarchy stable also carves the serving layer into k
// independently-updatable shards.
//
//   readers (ThreadPool)               single writer thread
//   ─────────────────────              ────────────────────────────────
//   load the current                ┌─ accumulate EnqueueUpdate()s,
//   ShardedSnapshot (one atomic     │  coalesce, then PARTITION the
//   pointer: k shard views +        │  batch by owning cell: repair and
//   one overlay table), route       │  republish only the dirtied
//   the query (below)               │  shards (other shards' serving
//                                   │  pointers are re-shared), rebuild
//                                   └─ the overlay, swap the snapshot
//
// The serving plumbing (pool, update queue, snapshot slot, batch and
// completion submission, result cache, stats) is the shared ServingCore
// of engine/serving_core.h; this file contributes the sharded policy:
// apply-batch = per-cell repair + overlay rebuild, route = the shard
// decomposition below.
//
// Construction: PartitionCells (partition/cells.h) cuts the graph into
// k connected cells isolated by the separator set S; BuildShardPlan
// (index/overlay.h) derives per-cell subgraphs on C_i ∪ S_i; one
// DistanceIndex backend (any of STL/CH/H2H/HC2L) is built per cell; a
// BoundaryOverlay maintains the exact S×S distance table D. Passing
// ShardedEngineOptions::target_shards == 0 delegates the choice of k to
// ChooseShardCount().
//
// Query routing (all answers exact — bit-identical to a flat engine on
// the same weights, guarded by bench_sharded_scaling --check):
//   * s == t                     -> 0
//   * both endpoints boundary    -> D[s][t]
//   * same cell                  -> min(shard-local distance,
//                                       min_{b1,b2} ds[b1] + D[b1][b2] + dt[b2])
//   * different cells / boundary -> min_{b1,b2} ds[b1] + D[b1][b2] + dt[b2]
// where ds/dt are the shard-local distances from each endpoint to its
// cell's boundary set S_i, and the inner minimum over b2 runs on the
// overlay's per-shard packed rows through the util/simd.h min-plus
// kernels. Correctness rests on S being a vertex separator: a shortest
// path leaves a cell only through S, its first/last boundary vertices
// split it into shard-local prefix/suffix plus a boundary-to-boundary
// middle, and D is exact for the middle (index/overlay.h).
//
// Batched routing (SubmitBatch): the batch is pinned to one snapshot,
// grouped by (source cell, target cell, target), and the ds/dt
// boundary-distance rows are memoised per endpoint across the group —
// plus one shared inner vector min_{b2} D[b1][b2] + dt[b2] per group
// target, computed through OverlayTable::MinPlusRowsInto. Same minima,
// same arithmetic: answers are bit-identical to per-query routing on
// the pinned epoch (asserted in tests/sharded_engine_test.cc and the
// bench_sharded_scaling --check guard).
//
// Update locality: a batch that only touches edges inside cell i
// republishes shard i's epoch and the overlay; every other shard's
// ShardServing pointer in the next snapshot is the SAME object
// (asserted in tests/sharded_engine_test.cc).
#ifndef STL_ENGINE_SHARDED_ENGINE_H_
#define STL_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "engine/serving_core.h"
#include "index/overlay.h"

namespace stl {

/// One shard's published serving state: an immutable backend view plus
/// the shard's own epoch counter. Re-shared by pointer across global
/// snapshots while the shard stays clean.
struct ShardServing {
  /// Cell id this serving state belongs to.
  uint32_t shard = 0;
  /// Per-shard epoch: number of times this shard has republished
  /// (0 = the initial build).
  uint64_t shard_epoch = 0;
  /// The shard backend's immutable query surface.
  std::shared_ptr<const IndexView> view;
};

/// One immutable published version of the sharded serving state. A
/// query loads exactly one ShardedSnapshot, so it always sees a
/// mutually consistent set of shard views and overlay table.
struct ShardedSnapshot {
  /// Global epoch (bumps on every effective update batch).
  uint64_t epoch = 0;
  /// Full-network weights as of this epoch (copy-on-write chunk share
  /// with neighbouring epochs); the per-epoch ground truth that
  /// Dijkstra audits run against.
  Graph graph;
  /// The shared shard layout (vertex/edge ownership, boundary maps).
  std::shared_ptr<const ShardLayout> layout;
  /// Per-cell serving state; entries are pointer-shared with the
  /// previous snapshot for every shard the producing batch left clean.
  std::vector<std::shared_ptr<const ShardServing>> shards;
  /// The epoch's boundary-to-boundary distance table.
  std::shared_ptr<const OverlayTable> overlay;

  /// Exact distance under this epoch's weights; kInfDistance when
  /// unreachable. Thread-safe for concurrent readers.
  Weight Query(Vertex s, Vertex t) const;
};

/// Answer to one query submitted to the sharded engine.
struct ShardedQueryResult {
  /// Exact distance for the serving snapshot's weights. Meaningful only
  /// when code == StatusCode::kOk (kInfDistance otherwise).
  Weight distance = kInfDistance;
  /// Global epoch of the serving snapshot.
  uint64_t epoch = 0;
  /// Submit-to-completion latency (queue wait included).
  double latency_micros = 0;
  /// The snapshot the query was served from; lets callers audit the
  /// answer against that epoch's exact weights.
  std::shared_ptr<const ShardedSnapshot> snapshot;
  /// kOk for an answered query; kOverloaded when admission control (or
  /// the shutdown drain) shed it; kDeadlineExceeded when its deadline
  /// passed before a reader dequeued it.
  StatusCode code = StatusCode::kOk;

  /// Typed status view of `code` (ServingStatus(code)).
  Status status() const { return ServingStatus(code); }
};

/// The shard count the engine picks when the caller passes
/// target_shards == 0: derived from the BENCH_sharded.json measurements
/// (ROADMAP "shard-count auto-tuning"). Two forces, both visible in the
/// bench rows: bigger networks amortize per-shard repair locality, so k
/// grows roughly linearly with |V| until cells reach a few thousand
/// vertices; but every effective epoch republishes the boundary
/// overlay, whose cost grows with |S| (and |S| with k), so a heavy
/// update feed pushes k back down toward fewer, bigger shards.
/// Incremental overlay repair moved that knee up an order of magnitude
/// (localized epochs re-run only the dirty boundary rows — see the
/// bench's localized phase), so the trade-off only bites at ~1000
/// updates/s and beyond.
/// `updates_per_second` is the caller's expected sustained update rate
/// (0 = read-mostly). Always returns at least 1.
uint32_t ChooseShardCount(uint32_t num_vertices, double updates_per_second);

/// Construction options for the sharded engine.
struct ShardedEngineOptions {
  /// Index family built per shard (index/distance_index.h).
  BackendKind backend = BackendKind::kStl;
  /// Requested cell count; the layout may produce more (extra connected
  /// components) or fewer (graph too small to cut). 1 = a single shard
  /// with an empty overlay; 0 = pick automatically via
  /// ChooseShardCount(num_vertices, expected_update_rate).
  uint32_t target_shards = 4;
  /// Expected sustained update rate (updates/second), consulted only by
  /// the target_shards == 0 auto-tuner.
  double expected_update_rate = 0;
  /// Reader threads.
  int num_query_threads = 4;
  /// Updates taken from the pending queue per global epoch.
  size_t max_batch_size = 128;
  /// Per-shard-batch STL maintenance choice (non-STL backends ignore).
  StrategyMode strategy = StrategyMode::kAuto;
  /// kAuto: shard batches with at least this many effective updates use
  /// Label Search.
  size_t auto_label_search_threshold = 16;
  /// Capacity of the epoch-keyed (s, t) result memo consulted by every
  /// submission path; 0 disables it.
  size_t result_cache_entries = 0;
  /// Capacity (slots) of the shard-epoch-keyed boundary-row cache
  /// shared by per-query and batched routing. Each slot holds one
  /// endpoint's |S_i| shard-to-boundary distances, validated by
  /// (shard, vertex, shard_epoch) — rows survive global epochs as long
  /// as their own shard stays clean. 0 disables it. Cached rows are
  /// bit-identical to freshly computed ones (they are exact shard
  /// distances on the validated shard epoch), so answers don't change.
  size_t boundary_row_cache_entries = 2048;
  /// Incremental overlay repair: when a publish would re-run Dijkstra
  /// from more than this fraction of the boundary rows, it falls back
  /// to the from-scratch rebuild instead. Repaired rows cost the same
  /// per-source Dijkstra as rebuilt ones and the min-plus patch over
  /// the rest is cheap, so repair keeps winning until the dirty set
  /// approaches the whole table (index/overlay.h).
  double overlay_repair_threshold = 0.75;
  /// Escape hatch: false forces every overlay publish down the
  /// from-scratch path (bench baselines, bisection). Answers are
  /// identical either way.
  bool overlay_incremental = true;
  /// Overload-hardening knobs (admission bounds, deadlines enforcement,
  /// stall watchdog, bounded shutdown drain, fault injection). Defaults
  /// to everything off — the pre-hardening behaviour.
  ServingOptions serving;
};

/// Shard-epoch-keyed cache of shard-to-boundary distance rows: the
/// batched router's per-batch ds/dt row memo promoted to an
/// engine-lifetime cache shared across batches AND per-query routing.
/// Fixed power-of-two slot array, each slot a seqlock-style
/// version-validated record (even version = stable, odd = mid-write)
/// with a row payload of up to max |S_i| weights — the same
/// torn-read-degrades-to-miss protocol as ServingCore's ResultCache,
/// so concurrent readers and writers never block and a torn slot is
/// simply a miss. Entries are validated by (shard, vertex,
/// shard_epoch): a shard republish invalidates exactly that shard's
/// rows, and rows of clean shards stay hot across global epochs.
class BoundaryRowCache {
 public:
  /// A disabled cache; Init() arms it.
  BoundaryRowCache() = default;

  /// Sizes the cache: `entries` slots (rounded up to a power of two),
  /// each holding up to `max_width` weights (the largest |S_i| of the
  /// layout). entries == 0 or max_width == 0 leaves it disabled.
  void Init(size_t entries, uint32_t max_width);

  /// True once Init() armed the cache.
  bool enabled() const { return slots_ != nullptr; }

  /// True iff the cache holds vertex `v`'s boundary row for shard
  /// `shard` at `shard_epoch`; copies `width` weights into `out`.
  /// `width` must be shard's |S_i| (<= Init's max_width).
  bool Lookup(uint32_t shard, uint64_t shard_epoch, Vertex v,
              uint32_t width, Weight* out) const;

  /// Publishes vertex `v`'s boundary row; silently dropped when the
  /// slot is mid-write by another thread.
  void Insert(uint32_t shard, uint64_t shard_epoch, Vertex v,
              uint32_t width, const Weight* row);

  /// Row probes so far (relaxed).
  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  /// Probes answered from the cache (relaxed).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Zeroes the probe counters (ResetStats; the entries stay valid).
  void ResetCounters() {
    lookups_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
  }

 private:
  /// One seqlock-protected cache record; the row payload lives in the
  /// flat rows_ array at this slot's offset.
  struct Slot {
    std::atomic<uint64_t> version{0};       // even = stable, odd = writing
    std::atomic<uint64_t> key{~uint64_t{0}};  // (vertex << 32) | shard
    std::atomic<uint64_t> epoch{0};         // shard_epoch of the row
  };

  size_t mask_ = 0;
  uint32_t max_width_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::unique_ptr<std::atomic<Weight>[]> rows_;
  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> hits_{0};
};

/// Concurrent sharded serving engine: the partitioned Apply + Route
/// policy over the shared ServingCore. Thread-safe: Submit/SubmitBatch/
/// SubmitTagged/EnqueueUpdate/Flush/Stats may be called from any
/// thread. Mirrors QueryEngine's API; the difference is inside the
/// writer (per-shard repair + overlay rebuild) and the read path (shard
/// routing).
class ShardedEngine {
 public:
  /// Batch handle type returned by SubmitBatch (one pinned snapshot per
  /// batch; see engine/serving_core.h).
  using Ticket = BatchTicket<ShardedSnapshot>;

  /// Takes ownership of the graph, partitions it, builds one backend
  /// index per cell plus the boundary overlay, starts the workers, and
  /// publishes epoch 0.
  ShardedEngine(Graph graph, const HierarchyOptions& hierarchy_options,
                const ShardedEngineOptions& options = {});

  /// Drains: answers every submitted query and applies every enqueued
  /// update before returning.
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;  ///< Not copyable.
  /// Not copyable.
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Schedules one distance query; the future resolves when a reader
  /// thread has answered it — or, under overload, with a kOverloaded /
  /// kDeadlineExceeded result code. Compatibility adapter: allocates
  /// one promise per query (prefer SubmitBatch / SubmitTagged at high
  /// qps).
  std::future<ShardedQueryResult> Submit(QueryPair query,
                                         Deadline deadline = kNoDeadline);

  /// Schedules a batch of queries pinned to ONE snapshot, grouped by
  /// (source cell, target cell, target) so boundary-distance rows are
  /// reused across the group; answers are bit-identical to per-query
  /// Submit calls on that same snapshot. Under overload queries may
  /// complete with failure codes on the ticket (BatchTicket::code).
  Ticket SubmitBatch(const std::vector<QueryPair>& queries,
                     Deadline deadline = kNoDeadline);

  /// Completion-queue mode: the completion is delivered to `sink`
  /// exactly once with the caller's tag — answered, shed or expired —
  /// and no promise or future is allocated.
  void SubmitTagged(QueryPair query, uint64_t tag, CompletionSink* sink,
                    Deadline deadline = kNoDeadline);

  /// Batched completion-queue mode: pins one snapshot and delivers
  /// `tags[i]` with query i's completion to `sink` exactly once.
  Ticket SubmitBatchTagged(const std::vector<QueryPair>& queries,
                           const std::vector<uint64_t>& tags,
                           CompletionSink* sink,
                           Deadline deadline = kNoDeadline);

  /// Records a desired new weight for an edge of the FULL graph (global
  /// edge ids; the writer routes it to the owning shard or the
  /// overlay). The old weight is re-resolved at apply time.
  void EnqueueUpdate(const WeightUpdate& update);
  /// Convenience overload of EnqueueUpdate(const WeightUpdate&).
  void EnqueueUpdate(EdgeId edge, Weight new_weight);

  /// Enqueues many updates atomically (one lock, one writer wakeup).
  void EnqueueUpdates(const std::vector<WeightUpdate>& updates);

  /// Blocks until every update enqueued before the call has been
  /// applied and, if effective, published.
  void Flush();

  /// The latest published snapshot (never null after construction).
  std::shared_ptr<const ShardedSnapshot> CurrentSnapshot() const;

  /// Global epoch of the latest snapshot.
  uint64_t CurrentEpoch() const { return CurrentSnapshot()->epoch; }

  /// The backend family each shard runs.
  BackendKind backend() const { return options_.backend; }
  /// Capabilities of the shard backends (identical across shards).
  const BackendCapabilities& capabilities() const { return capabilities_; }
  /// Number of cells actually produced by the partition.
  uint32_t num_shards() const { return layout_->num_shards(); }
  /// The immutable shard layout (cell assignment, edge ownership,
  /// boundary bookkeeping).
  const ShardLayout& layout() const { return *layout_; }

  /// Point-in-time counters; `shards` carries the per-shard rows.
  EngineStats Stats() const;

  /// Zeroes counters (except the epoch allocators) and the latency
  /// histogram and restarts the wall clock (for bench warmup). Call
  /// only while no queries are in flight.
  void ResetStats();

  /// Reader thread count.
  int num_query_threads() const;

 private:
  // The sharded Apply + Route policy the shared ServingCore drives (see
  // the policy contract in engine/serving_core.h).
  struct Policy {
    using Snapshot = ShardedSnapshot;
    using Result = ShardedQueryResult;
    // Batched misses are sorted by (source cell, target cell, target)
    // so the routing chunks can reuse ds/dt rows and inner vectors.
    static constexpr bool kGroupsBatches = true;

    ShardedEngine* engine;

    void PublishInitial();
    Weight ResolveOldWeight(EdgeId e) const;
    void ApplyBatch(const UpdateBatch& batch);
    uint32_t NumEdges() const;
    Weight Route(const ShardedSnapshot& snap, Vertex s, Vertex t,
                 StatusCode* code) const;
    uint64_t BatchSortKey(const ShardedSnapshot& snap,
                          const QueryPair& q) const;
    void RouteSpan(const ShardedSnapshot& snap, const QueryPair* queries,
                   const uint32_t* idx, size_t count, Weight* out,
                   StatusCode* codes) const;
    void AugmentStats(EngineStats* s) const;
  };

  /// Writer-owned mutable state of one shard.
  struct ShardState {
    std::unique_ptr<Graph> graph;          // shard master subgraph
    std::unique_ptr<DistanceIndex> index;  // shard master index
    uint64_t shard_epoch = 0;
  };

  /// Applies one coalesced batch (already partitioned by the caller into
  /// per-shard / overlay updates), republishes dirty shards + overlay,
  /// and swaps in the next snapshot. Writer thread only.
  void ApplyAndPublish(const UpdateBatch& batch);
  /// Builds and publishes the epoch-0 snapshot (constructor only).
  void PublishInitialSnapshot();

  const ShardedEngineOptions options_;

  // Master state, owned by the writer after construction.
  std::unique_ptr<Graph> graph_;  // full network (weights kept current)
  std::shared_ptr<const ShardLayout> layout_;
  std::vector<ShardState> states_;
  std::unique_ptr<BoundaryOverlay> overlay_;
  // Writer-side copy of the serving vector (next snapshot = this vector
  // with dirty entries replaced).
  std::vector<std::shared_ptr<const ShardServing>> serving_;
  BackendCapabilities capabilities_;

  // Last-harvested cumulative CoW counters of the master FULL graph
  // only (shard subgraphs are never snapshotted, so their writes don't
  // clone; shard-side label copy cost arrives via PublishInfo). Only
  // the publishing thread touches these.
  uint64_t harvested_graph_chunks_ = 0;
  uint64_t harvested_graph_bytes_ = 0;

  // Shard-epoch-keyed boundary-row cache, consulted by both routing
  // paths (readers insert concurrently; lock-free seqlock slots).
  BoundaryRowCache row_cache_;

  // Sharded-only stats (the common block lives in the core's counters).
  std::atomic<uint64_t> overlay_nanos_{0};
  std::atomic<uint64_t> overlay_repair_nanos_{0};
  std::atomic<uint64_t> overlay_republishes_{0};
  std::atomic<uint64_t> overlay_rows_repaired_{0};
  std::atomic<uint64_t> overlay_rows_total_{0};
  std::atomic<uint64_t> overlay_full_rebuilds_{0};
  std::atomic<uint64_t> clique_entries_recomputed_{0};
  std::atomic<uint64_t> overlay_bytes_shared_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> shard_updates_;

  Policy policy_{this};
  ServingCore<Policy> core_;  // last member: its workers die first
};

}  // namespace stl

#endif  // STL_ENGINE_SHARDED_ENGINE_H_
