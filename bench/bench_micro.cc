// google-benchmark microbenchmarks of the core primitives: query paths of
// every index, both maintenance engines, and the no-index Dijkstra
// references. Complements the table/figure harnesses with
// statistically-stable per-operation numbers.
#include <benchmark/benchmark.h>

#include "baselines/h2h.h"
#include "baselines/hc2l.h"
#include "core/stl_index.h"
#include "graph/dijkstra.h"
#include "util/rng.h"
#include "workload/datasets.h"
#include "workload/query_workload.h"
#include "workload/update_workload.h"

namespace stl {
namespace {

/// Shared state: one mid-sized dataset, all indexes built once.
struct Env {
  Graph g_stl;
  Graph g_h2h;
  Graph g_ref;
  StlIndex stl_idx;
  Hc2lIndex hc2l;
  H2hIndex h2h;
  std::vector<QueryPair> pairs;

  static Env* Get() {
    static Env* env = new Env();
    return env;
  }

 private:
  Env()
      : g_stl(LoadDataset(AllDatasets()[2])),  // COL-S, ~7k vertices
        g_h2h(g_stl),
        g_ref(g_stl),
        stl_idx(StlIndex::Build(&g_stl, HierarchyOptions{})),
        hc2l(Hc2lIndex::Build(g_ref, HierarchyOptions{})),
        h2h(H2hIndex::Build(&g_h2h)),
        pairs(RandomQueryPairs(g_ref, 4096, 12345)) {}
};

void BM_StlQuery(benchmark::State& state) {
  Env* env = Env::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = env->pairs[i++ & 4095];
    benchmark::DoNotOptimize(env->stl_idx.Query(s, t));
  }
}
BENCHMARK(BM_StlQuery);

void BM_Hc2lQuery(benchmark::State& state) {
  Env* env = Env::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = env->pairs[i++ & 4095];
    benchmark::DoNotOptimize(env->hc2l.Query(s, t));
  }
}
BENCHMARK(BM_Hc2lQuery);

void BM_H2hQuery(benchmark::State& state) {
  Env* env = Env::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = env->pairs[i++ & 4095];
    benchmark::DoNotOptimize(env->h2h.Query(s, t));
  }
}
BENCHMARK(BM_H2hQuery);

void BM_BidirectionalDijkstra(benchmark::State& state) {
  Env* env = Env::Get();
  BidirectionalDijkstra bi(env->g_ref);
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = env->pairs[i++ & 4095];
    benchmark::DoNotOptimize(bi.Distance(s, t));
  }
}
BENCHMARK(BM_BidirectionalDijkstra)->Unit(benchmark::kMicrosecond);

void BM_ParetoIncreaseDecreaseCycle(benchmark::State& state) {
  Env* env = Env::Get();
  Rng rng(99);
  for (auto _ : state) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(env->g_stl.NumEdges()));
    Weight w = env->g_stl.EdgeWeight(e);
    env->stl_idx.ApplyUpdate(WeightUpdate{e, w, w * 2},
                             MaintenanceStrategy::kParetoSearch);
    env->stl_idx.ApplyUpdate(WeightUpdate{e, w * 2, w},
                             MaintenanceStrategy::kParetoSearch);
  }
}
BENCHMARK(BM_ParetoIncreaseDecreaseCycle)->Unit(benchmark::kMicrosecond);

void BM_LabelSearchIncreaseDecreaseCycle(benchmark::State& state) {
  Env* env = Env::Get();
  Rng rng(98);
  for (auto _ : state) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(env->g_stl.NumEdges()));
    Weight w = env->g_stl.EdgeWeight(e);
    env->stl_idx.ApplyUpdate(WeightUpdate{e, w, w * 2},
                             MaintenanceStrategy::kLabelSearch);
    env->stl_idx.ApplyUpdate(WeightUpdate{e, w * 2, w},
                             MaintenanceStrategy::kLabelSearch);
  }
}
BENCHMARK(BM_LabelSearchIncreaseDecreaseCycle)
    ->Unit(benchmark::kMicrosecond);

void BM_IncH2HIncreaseDecreaseCycle(benchmark::State& state) {
  Env* env = Env::Get();
  Rng rng(97);
  for (auto _ : state) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(env->g_h2h.NumEdges()));
    Weight w = env->g_h2h.EdgeWeight(e);
    env->h2h.ApplyUpdate(WeightUpdate{e, w, w * 2},
                         H2hIndex::Maintenance::kIncH2H);
    env->h2h.ApplyUpdate(WeightUpdate{e, w * 2, w},
                         H2hIndex::Maintenance::kIncH2H);
  }
}
BENCHMARK(BM_IncH2HIncreaseDecreaseCycle)->Unit(benchmark::kMicrosecond);

void BM_LcaLevel(benchmark::State& state) {
  Env* env = Env::Get();
  const auto& h = env->stl_idx.hierarchy();
  size_t i = 0;
  for (auto _ : state) {
    auto [s, t] = env->pairs[i++ & 4095];
    benchmark::DoNotOptimize(h.LcaLevel(s, t));
  }
}
BENCHMARK(BM_LcaLevel);

}  // namespace
}  // namespace stl

BENCHMARK_MAIN();
