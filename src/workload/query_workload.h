// Query workload generation: uniform random pairs (Table 5) and the
// distance-stratified sets Q1..Q10 of Figure 9.
//
// Stratification follows the paper (Section 7, "test input generation"):
// l_min is a small base distance, l_max the (approximate) network
// diameter, x = (l_max / l_min)^(1/10), and Q_i holds pairs whose
// distance falls in (l_min * x^(i-1), l_min * x^i].
#ifndef STL_WORKLOAD_QUERY_WORKLOAD_H_
#define STL_WORKLOAD_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace stl {

using QueryPair = std::pair<Vertex, Vertex>;

/// Uniform random (s, t) pairs.
std::vector<QueryPair> RandomQueryPairs(const Graph& g, size_t count,
                                        uint64_t seed);

/// Uniform random pairs with a skewed hot set: a `hot_fraction` of the
/// returned pairs is drawn (with repetition) from a fixed pool of
/// `hot_pairs` random pairs; the rest is uniform. Models the
/// repeated-query skew of serving traffic — the workload shape under
/// which the engines' epoch-keyed result cache earns hits. Fully
/// deterministic in `seed`; hot_fraction <= 0 or hot_pairs == 0
/// degenerates to RandomQueryPairs.
std::vector<QueryPair> HotSpotQueryPairs(const Graph& g, size_t count,
                                         double hot_fraction,
                                         size_t hot_pairs, uint64_t seed);

/// Approximate network diameter via a double Dijkstra sweep (lower bound,
/// tight enough for bucketing).
Weight ApproximateDiameter(const Graph& g);

/// Query sets Q1..Q10. Each set holds up to `per_set` pairs in its
/// distance bucket (sampling sources and bucketing all reachable targets,
/// so even extreme buckets fill quickly). sets[i] is Q_{i+1}.
std::vector<std::vector<QueryPair>> StratifiedQuerySets(const Graph& g,
                                                        size_t per_set,
                                                        uint64_t seed);

}  // namespace stl

#endif  // STL_WORKLOAD_QUERY_WORKLOAD_H_
