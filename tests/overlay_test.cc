// Incremental overlay repair audit (index/overlay.h): a persistent
// BoundaryOverlay fed batches of weight changes must publish tables
// bitwise-identical to a from-scratch overlay built on the same
// weights — increases, decreases, direct S–S updates, kInfDistance
// disconnect/reconnect transitions, and multi-cell batches — while
// pointer-sharing the rows the batch left clean. The engine-level
// section replays the same contract through ShardedEngine on all four
// backends under concurrent batch load (the TSan target).
#include "index/overlay.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "engine/sharded_engine.h"
#include "graph/dijkstra.h"
#include "partition/cells.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

// Drives one layout with two overlays: `inc` lives across rounds and
// publishes incrementally; Scratch() builds a throwaway overlay from
// the current weights and publishes with repair disabled. Exact
// distances are unique, so the two tables must match byte for byte.
class OverlayHarness {
 public:
  OverlayHarness(uint32_t side, uint64_t seed, uint32_t cells)
      : master_(testing_util::SmallRoadNetwork(side, seed)) {
    CellPartition partition =
        PartitionCells(master_, cells, HierarchyOptions{});
    plan_ = BuildShardPlan(master_, partition);
    inc_ = std::make_unique<BoundaryOverlay>(&plan_.layout, master_);
    for (uint32_t s = 0; s < plan_.layout.num_shards(); ++s) {
      inc_->RebuildClique(s, plan_.shard_graphs[s]);
    }
  }

  const ShardLayout& layout() const { return plan_.layout; }
  const Graph& master() const { return master_; }

  // Applies one weight change to the master graph and routes it to the
  // owning shard graph (marking its clique dirty) or the overlay's
  // direct edge set — the same plumbing ShardedEngine's writer runs.
  void ApplyWeight(EdgeId e, Weight w) {
    master_.SetEdgeWeight(e, w);
    const uint32_t s = plan_.layout.shard_of_edge[e];
    if (s == ShardLayout::kOverlayShard) {
      inc_->SetDirectWeight(plan_.layout.local_of_edge[e], w);
    } else {
      plan_.shard_graphs[s].SetEdgeWeight(plan_.layout.local_of_edge[e],
                                          w);
      touched_.insert(s);
    }
  }

  // Forces clique entry (i, j) of shard s to `w` on both the
  // incremental overlay and every future Scratch() build — the only
  // way a weight-only stream can be made to exercise kInfDistance
  // transitions inside a connected test graph.
  void OverrideCliqueEntry(uint32_t s, uint32_t i, uint32_t j, Weight w) {
    inc_->OverrideCliqueEntryForTest(s, i, j, w);
    overrides_.emplace_back(s, i, j, w);
  }

  void ClearOverrides(uint32_t s) {
    std::vector<std::tuple<uint32_t, uint32_t, uint32_t, Weight>> keep;
    for (const auto& o : overrides_) {
      if (std::get<0>(o) != s) keep.push_back(o);
    }
    overrides_ = std::move(keep);
    touched_.insert(s);  // rebuild recomputes the true entries
  }

  std::shared_ptr<const OverlayTable> PublishIncremental(
      OverlayPublishStats* stats = nullptr, bool allow_repair = true) {
    for (uint32_t s : touched_) {
      inc_->RebuildClique(s, plan_.shard_graphs[s]);
      for (const auto& [os, i, j, w] : overrides_) {
        if (os == s) inc_->OverrideCliqueEntryForTest(os, i, j, w);
      }
    }
    touched_.clear();
    return inc_->Publish(allow_repair, stats);
  }

  std::shared_ptr<const OverlayTable> Scratch() {
    BoundaryOverlay fresh(&plan_.layout, master_);
    for (uint32_t s = 0; s < plan_.layout.num_shards(); ++s) {
      fresh.RebuildClique(s, plan_.shard_graphs[s]);
    }
    for (const auto& [s, i, j, w] : overrides_) {
      fresh.OverrideCliqueEntryForTest(s, i, j, w);
    }
    return fresh.Publish(/*allow_repair=*/false);
  }

  // Picks an edge owned by a shard (never the overlay), deterministic
  // in rng state.
  EdgeId ShardOwnedEdge(Rng* rng) const {
    for (;;) {
      EdgeId e = static_cast<EdgeId>(rng->NextBounded(master_.NumEdges()));
      if (plan_.layout.shard_of_edge[e] != ShardLayout::kOverlayShard) {
        return e;
      }
    }
  }

 private:
  Graph master_;
  ShardPlan plan_;
  std::unique_ptr<BoundaryOverlay> inc_;
  std::set<uint32_t> touched_;
  std::vector<std::tuple<uint32_t, uint32_t, uint32_t, Weight>> overrides_;
};

void ExpectSameTable(const OverlayTable& got, const OverlayTable& want,
                     const ShardLayout& layout, const char* context) {
  ASSERT_EQ(got.num_boundary(), want.num_boundary()) << context;
  const uint32_t n = got.num_boundary();
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = 0; b < n; ++b) {
      ASSERT_EQ(got.At(a, b), want.At(a, b))
          << context << " a=" << a << " b=" << b;
    }
  }
  for (uint32_t s = 0; s < layout.num_shards(); ++s) {
    const uint32_t w =
        static_cast<uint32_t>(layout.shards[s].boundary_local.size());
    for (uint32_t a = 0; a < n; ++a) {
      const Weight* gp = got.PackedRow(s, a);
      const Weight* wp = want.PackedRow(s, a);
      for (uint32_t j = 0; j < w; ++j) {
        ASSERT_EQ(gp[j], wp[j])
            << context << " packed s=" << s << " a=" << a << " j=" << j;
      }
    }
  }
}

TEST(OverlayRepairTest, FirstPublishMatchesScratch) {
  OverlayHarness h(9, 101, 4);
  OverlayPublishStats st;
  auto table = h.PublishIncremental(&st);
  EXPECT_TRUE(st.full_rebuild);  // nothing to diff against yet
  EXPECT_EQ(st.rows_repaired, st.rows_total);
  ExpectSameTable(*table, *h.Scratch(), h.layout(), "first publish");
}

TEST(OverlayRepairTest, RandomMixedBatchesMatchScratch) {
  OverlayHarness h(9, 102, 4);
  h.PublishIncremental();
  Rng rng(102);
  uint64_t repaired_publishes = 0;
  for (int round = 0; round < 24; ++round) {
    // Multi-cell batches: edges drawn across the whole network, sizes
    // 1..6, mixed increases and decreases (RandomUpdate flips a coin).
    const int batch = 1 + static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < batch; ++i) {
      WeightUpdate u = testing_util::RandomUpdate(h.master(), &rng);
      h.ApplyWeight(u.edge, u.new_weight);
    }
    OverlayPublishStats st;
    auto table = h.PublishIncremental(&st);
    // A repaired row whose re-run reproduced identical bytes counts in
    // both rows_repaired and rows_shared, so the partition is bounded,
    // not exact.
    ASSERT_LE(st.rows_shared + st.rows_patched, st.rows_total)
        << "round " << round;
    ASSERT_GE(st.rows_repaired + st.rows_patched + st.rows_shared,
              st.rows_total)
        << "round " << round;
    if (!st.full_rebuild) ++repaired_publishes;
    ExpectSameTable(*table, *h.Scratch(), h.layout(),
                    ("mixed round " + std::to_string(round)).c_str());
  }
  // The stream must actually exercise the incremental path, not ride
  // the fallback the whole way.
  EXPECT_GT(repaired_publishes, 0u);
}

TEST(OverlayRepairTest, PureIncreaseBatchesShareCleanRows) {
  OverlayHarness h(10, 103, 4);
  auto prev = h.PublishIncremental();
  Rng rng(103);
  bool saw_shared_row = false;
  for (int round = 0; round < 12; ++round) {
    EdgeId e = h.ShardOwnedEdge(&rng);
    Weight w = h.master().EdgeWeight(e);
    h.ApplyWeight(e, std::min<Weight>(kMaxEdgeWeight, w * 2 + 1));
    OverlayPublishStats st;
    auto table = h.PublishIncremental(&st);
    ExpectSameTable(*table, *h.Scratch(), h.layout(), "pure increase");
    if (!st.full_rebuild) {
      // Increases produce no anchors, so nothing is patched: every row
      // is either re-run (tightness-tagged) or pointer-shared.
      EXPECT_EQ(st.rows_patched, 0u) << "round " << round;
      EXPECT_GE(st.rows_repaired + st.rows_shared, st.rows_total);
      for (uint32_t r = 0; r < table->num_boundary(); ++r) {
        if (table->Row(r) == prev->Row(r)) {
          saw_shared_row = true;
          break;
        }
      }
    }
    prev = table;
  }
  EXPECT_TRUE(saw_shared_row)
      << "no single-edge increase ever pointer-shared a row";
}

TEST(OverlayRepairTest, PureDecreaseBatchesMatchScratch) {
  OverlayHarness h(10, 104, 4);
  h.PublishIncremental();
  Rng rng(104);
  // Congest a pool of edges first so every later decrease is real.
  std::vector<EdgeId> pool;
  for (int i = 0; i < 10; ++i) pool.push_back(h.ShardOwnedEdge(&rng));
  for (EdgeId e : pool) {
    h.ApplyWeight(e, std::min<Weight>(kMaxEdgeWeight,
                                      h.master().EdgeWeight(e) * 4));
  }
  h.PublishIncremental();
  for (size_t i = 0; i < pool.size(); i += 2) {
    h.ApplyWeight(pool[i], std::max<Weight>(1u, h.master().EdgeWeight(
                                                    pool[i]) /
                                                    4));
    if (i + 1 < pool.size()) {
      h.ApplyWeight(pool[i + 1],
                    std::max<Weight>(
                        1u, h.master().EdgeWeight(pool[i + 1]) / 4));
    }
    OverlayPublishStats st;
    auto table = h.PublishIncremental(&st);
    ASSERT_GE(st.rows_repaired + st.rows_patched + st.rows_shared,
              st.rows_total);
    ExpectSameTable(*table, *h.Scratch(), h.layout(), "pure decrease");
  }
}

TEST(OverlayRepairTest, DirectEdgeUpdatesMatchScratch) {
  // A fine partition of a small grid owns S-S edges directly.
  OverlayHarness h(8, 105, 8);
  if (h.layout().direct_edges.empty()) {
    GTEST_SKIP() << "layout produced no direct overlay edges";
  }
  h.PublishIncremental();
  Rng rng(105);
  for (int round = 0; round < 10; ++round) {
    const uint32_t slot = static_cast<uint32_t>(
        rng.NextBounded(h.layout().direct_edges.size()));
    const EdgeId e = h.layout().direct_edges[slot].global_edge;
    const Weight w = h.master().EdgeWeight(e);
    const Weight nw = (round % 2 == 0)
                          ? std::min<Weight>(kMaxEdgeWeight, w * 3)
                          : std::max<Weight>(1u, w / 3);
    if (nw == w) continue;
    h.ApplyWeight(e, nw);
    auto table = h.PublishIncremental();
    ExpectSameTable(*table, *h.Scratch(), h.layout(), "direct edge");
  }
}

TEST(OverlayRepairTest, InfinityTransitionsMatchScratch) {
  OverlayHarness h(9, 106, 4);
  h.PublishIncremental();
  // Disconnect: force a finite clique entry to kInfDistance (an
  // increase whose new weight never enters the search graph), publish,
  // compare. Reconnect: drop the override and rebuild the clique (a
  // kInf -> finite decrease), publish, compare.
  const ShardLayout& layout = h.layout();
  for (uint32_t s = 0; s < layout.num_shards(); ++s) {
    const uint32_t w =
        static_cast<uint32_t>(layout.shards[s].boundary_local.size());
    if (w < 2) continue;
    h.OverrideCliqueEntry(s, 0, w - 1, kInfDistance);
    auto cut = h.PublishIncremental();
    ExpectSameTable(*cut, *h.Scratch(), layout, "disconnect");
    h.ClearOverrides(s);
    auto back = h.PublishIncremental();
    ExpectSameTable(*back, *h.Scratch(), layout, "reconnect");
  }
}

TEST(OverlayRepairTest, EmptyPublishSharesEveryRow) {
  OverlayHarness h(9, 107, 4);
  auto first = h.PublishIncremental();
  OverlayPublishStats st;
  auto second = h.PublishIncremental(&st);
  EXPECT_FALSE(st.full_rebuild);
  EXPECT_EQ(st.rows_repaired, 0u);
  EXPECT_EQ(st.rows_shared, st.rows_total);
  EXPECT_GT(st.bytes_shared, 0u);
  for (uint32_t r = 0; r < first->num_boundary(); ++r) {
    ASSERT_EQ(first->Row(r), second->Row(r)) << "row " << r;
  }
}

TEST(OverlayRepairTest, RepairDisallowedFallsBackExactly) {
  OverlayHarness h(9, 108, 4);
  h.PublishIncremental();
  Rng rng(108);
  for (int i = 0; i < 4; ++i) {
    WeightUpdate u = testing_util::RandomUpdate(h.master(), &rng);
    h.ApplyWeight(u.edge, u.new_weight);
  }
  OverlayPublishStats st;
  auto table =
      h.PublishIncremental(&st, /*allow_repair=*/false);
  EXPECT_TRUE(st.full_rebuild);
  EXPECT_EQ(st.rows_repaired, st.rows_total);
  ExpectSameTable(*table, *h.Scratch(), h.layout(), "repair disallowed");
}

// ---------------------------------------------------------------------
// Engine level: the repair path serving live traffic on all four
// backends, audited against per-epoch Dijkstra ground truth while
// batched readers race the writer (the TSan workload).

class OverlayEngineTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(OverlayEngineTest, IncrementalEpochsStayExactUnderLoad) {
  Graph g = testing_util::SmallRoadNetwork(7, 109);
  const uint32_t n = g.NumVertices();
  const uint32_t m = g.NumEdges();
  ShardedEngineOptions opt;
  opt.backend = GetParam();
  opt.target_shards = 4;
  opt.num_query_threads = 4;
  opt.max_batch_size = 4;
  ShardedEngine engine(std::move(g), HierarchyOptions{}, opt);
  Rng rng(109);
  testing_util::EpochOracle oracle;
  for (int round = 0; round < 6; ++round) {
    std::vector<WeightUpdate> updates;
    for (int i = 0; i < 3; ++i) {
      updates.push_back(
          WeightUpdate{static_cast<EdgeId>(rng.NextBounded(m)), 0,
                       1 + static_cast<Weight>(rng.NextBounded(500))});
    }
    engine.EnqueueUpdates(updates);
    // Readers race the repair-and-republish writer.
    std::vector<QueryPair> batch;
    for (int i = 0; i < 32; ++i) {
      batch.push_back({static_cast<Vertex>(rng.NextBounded(n)),
                       static_cast<Vertex>(rng.NextBounded(n))});
    }
    ShardedEngine::Ticket ticket = engine.SubmitBatch(batch);
    engine.Flush();
    ticket.Wait();
    Dijkstra& batch_audit =
        oracle.For(ticket.epoch(), ticket.snapshot()->graph);
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(ticket.code(i), StatusCode::kOk);
      ASSERT_EQ(ticket.distance(i),
                batch_audit.Distance(batch[i].first, batch[i].second))
          << BackendName(GetParam()) << " round=" << round << " i=" << i;
    }
    auto snap = engine.CurrentSnapshot();
    Dijkstra& audit = oracle.For(snap->epoch, snap->graph);
    for (int i = 0; i < 40; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(n));
      Vertex t = static_cast<Vertex>(rng.NextBounded(n));
      ASSERT_EQ(snap->Query(s, t), audit.Distance(s, t))
          << BackendName(GetParam()) << " round=" << round;
    }
  }
  EngineStats stats = engine.Stats();
  EXPECT_GT(stats.overlay_rows_total, 0u);
  EXPECT_LE(stats.overlay_rows_repaired, stats.overlay_rows_total);
  EXPECT_GT(stats.clique_entries_recomputed, 0u);
  EXPECT_GT(stats.boundary_row_cache_lookups, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, OverlayEngineTest,
                         ::testing::Values(BackendKind::kStl,
                                           BackendKind::kCh,
                                           BackendKind::kH2h,
                                           BackendKind::kHc2l),
                         [](const auto& info) {
                           return std::string(BackendName(info.param));
                         });

}  // namespace
}  // namespace stl
