// Reference shortest-path oracles: plain Dijkstra, bidirectional Dijkstra,
// and a Floyd–Warshall all-pairs oracle for small test graphs. These are
// the baselines every index is validated against, and the "classical
// approach" the paper's introduction contrasts with.
#ifndef STL_GRAPH_DIJKSTRA_H_
#define STL_GRAPH_DIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/min_heap.h"

namespace stl {

/// Reusable single-source Dijkstra. Buffers are epoch-stamped so repeated
/// calls on the same graph do no O(n) clearing.
class Dijkstra {
 public:
  explicit Dijkstra(const Graph& g);

  /// Distance s -> t with early termination, kInfDistance if unreachable.
  Weight Distance(Vertex s, Vertex t);

  /// Distances from s to every vertex (kInfDistance where unreachable).
  /// The returned reference is valid until the next call.
  const std::vector<Weight>& AllDistances(Vertex s);

  /// Distances from s to all vertices at distance <= radius; vertices
  /// farther away keep kInfDistance.
  const std::vector<Weight>& DistancesWithin(Vertex s, Weight radius);

  /// Number of heap pops in the last call (search-space metric).
  uint64_t last_settled() const { return last_settled_; }

 private:
  void Reset();
  Weight Run(Vertex s, Vertex t, Weight radius);

  const Graph& g_;
  std::vector<Weight> dist_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  MinHeap<Weight, Vertex> heap_;
  uint64_t last_settled_ = 0;
};

/// Bidirectional Dijkstra point-to-point oracle.
class BidirectionalDijkstra {
 public:
  explicit BidirectionalDijkstra(const Graph& g);

  /// Distance s -> t, kInfDistance if unreachable.
  Weight Distance(Vertex s, Vertex t);

  uint64_t last_settled() const { return last_settled_; }

 private:
  const Graph& g_;
  std::vector<Weight> dist_[2];
  std::vector<uint32_t> stamp_[2];
  uint32_t epoch_ = 0;
  MinHeap<Weight, Vertex> heap_[2];
  uint64_t last_settled_ = 0;
};

/// All-pairs distances by Floyd–Warshall. O(n^3); test oracle for graphs
/// with at most a few hundred vertices.
std::vector<std::vector<Weight>> FloydWarshallAllPairs(const Graph& g);

}  // namespace stl

#endif  // STL_GRAPH_DIJKSTRA_H_
