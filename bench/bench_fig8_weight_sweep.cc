// Reproduces Figure 8: per-update time as a function of how much weights
// change. Batch t multiplies the sampled edges' weights by (t+1) and then
// restores them, t = 1..9, for STL-P+/- and IncH2H+/-.
//
// Expected shape (paper): STL-P+ grows with the factor (the Algorithm 4
// line-18 upper bound is tight less often, shifting work to Repair);
// STL-P-, IncH2H+ and IncH2H- stay flat.
#include "baselines/h2h.h"
#include "bench/bench_common.h"
#include "core/stl_index.h"
#include "util/table.h"
#include "workload/update_workload.h"

using namespace stl;

int main() {
  auto cfg = bench::MakeConfig();
  bench::PrintHeader("Figure 8 — update time vs weight-change factor", cfg);
  // The paper plots all datasets; we use the largest few of the scale.
  size_t first = cfg.datasets.size() >= 3 ? cfg.datasets.size() - 3 : 0;
  for (size_t di = first; di < cfg.datasets.size(); ++di) {
    const auto& spec = cfg.datasets[di];
    Graph g_stl = LoadDataset(spec);
    Graph g_h2h = g_stl;
    StlIndex stl_idx = StlIndex::Build(&g_stl, HierarchyOptions{});
    H2hIndex h2h = H2hIndex::Build(&g_h2h);

    std::printf("(%s) ms per update\n", spec.name.c_str());
    TablePrinter table(
        {"factor", "STL-P+", "STL-P-", "IncH2H+", "IncH2H-"});
    // One fixed edge set across the sweep so only the factor varies
    // (the paper's 1000-update batches average this noise away; at small
    // scale we control it instead).
    auto edges = SampleDistinctEdges(g_stl, cfg.batch_size, spec.seed * 97);
    for (int t = 1; t <= 9; ++t) {
      UpdateBatch inc = MakeIncreaseBatch(g_stl, edges, t + 1.0);
      UpdateBatch dec = MakeRestoreBatch(inc);
      if (inc.empty()) continue;
      double msv[4];
      {
        Timer tm;
        stl_idx.ApplyBatch(inc, MaintenanceStrategy::kParetoSearch);
        msv[0] = tm.ElapsedMillis() / inc.size();
        tm.Restart();
        stl_idx.ApplyBatch(dec, MaintenanceStrategy::kParetoSearch);
        msv[1] = tm.ElapsedMillis() / dec.size();
      }
      {
        Timer tm;
        for (const WeightUpdate& u : inc) {
          h2h.ApplyUpdate(u, H2hIndex::Maintenance::kIncH2H);
        }
        msv[2] = tm.ElapsedMillis() / inc.size();
        tm.Restart();
        for (const WeightUpdate& u : dec) {
          h2h.ApplyUpdate(u, H2hIndex::Maintenance::kIncH2H);
        }
        msv[3] = tm.ElapsedMillis() / dec.size();
      }
      table.AddRow({std::to_string(t), TablePrinter::Fixed(msv[0], 3),
                    TablePrinter::Fixed(msv[1], 3),
                    TablePrinter::Fixed(msv[2], 3),
                    TablePrinter::Fixed(msv[3], 3)});
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
