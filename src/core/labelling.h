// Stable Tree Labelling storage, construction and querying
// (Definitions 4.4–4.6, Lemma 4.7, Equation 3).
//
// The label of v is the flat array L(v) = [d_{w1}(v,w1), ..., d_{wk}(v,wk)]
// over v's ancestors w1 ⪯ ... ⪯ wk (wk = v itself, entry 0). The crucial
// design of the paper: entry i stores the distance *within the subgraph*
// G[Desc(w_i)], not the distance in G. Lemma 4.7 shows this still covers
// every shortest path, and it is what restricts the blast radius of a
// weight update to the subgraphs containing the updated edge.
#ifndef STL_CORE_LABELLING_H_
#define STL_CORE_LABELLING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/tree_hierarchy.h"
#include "graph/graph.h"
#include "util/serialize.h"

namespace stl {

/// Adds two distances, saturating at kInfDistance (so "unreachable"
/// propagates instead of wrapping).
inline Weight SaturatingAdd(Weight a, Weight b) {
  Weight s = a + b;  // both <= kInfDistance, no uint32 overflow
  return s >= kInfDistance ? kInfDistance : s;
}

/// Flattened distance labels: one contiguous uint32 block per vertex,
/// |L(v)| = tau(v) + 1, hub entries of any query contiguous in memory.
class Labelling {
 public:
  Labelling() = default;

  /// Allocates labels shaped by the hierarchy, all entries kInfDistance
  /// except each vertex's self entry (0).
  static Labelling AllocateFor(const TreeHierarchy& h);

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(offset_.empty() ? 0 : offset_.size() - 1);
  }

  uint32_t LabelSize(Vertex v) const { return offset_[v + 1] - offset_[v]; }

  Weight At(Vertex v, uint32_t i) const {
    STL_DCHECK(i < LabelSize(v));
    return entries_[offset_[v] + i];
  }
  void Set(Vertex v, uint32_t i, Weight d) {
    STL_DCHECK(i < LabelSize(v));
    entries_[offset_[v] + i] = d;
  }

  /// Raw pointer to L(v) — the query hot path.
  const Weight* Data(Vertex v) const { return entries_.data() + offset_[v]; }
  Weight* MutableData(Vertex v) { return entries_.data() + offset_[v]; }

  uint64_t TotalEntries() const { return entries_.size(); }
  uint64_t MemoryBytes() const {
    return entries_.capacity() * sizeof(Weight) +
           offset_.capacity() * sizeof(uint64_t);
  }

  Status Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

  bool operator==(const Labelling& o) const {
    return offset_ == o.offset_ && entries_ == o.entries_;
  }

 private:
  std::vector<uint64_t> offset_;  // size n+1
  std::vector<Weight> entries_;
};

/// Builds the STL labels of `g` over hierarchy `h`: for each cut vertex r
/// (in hierarchy order), a Dijkstra restricted to Desc(r) fills column
/// tau(r) of every descendant's label (Remark 1). By Lemma 5.3 the
/// restriction is the test tau(neighbour) > tau(r).
///
/// Columns are embarrassingly parallel: distinct cut vertices write
/// disjoint (vertex, column) cells (equal tau implies disjoint Desc
/// sets), so num_threads > 1 splits the cut vertices across threads.
Labelling BuildLabelling(const Graph& g, const TreeHierarchy& h,
                         int num_threads = 1);

/// Answers a distance query from the labels (Equation 3): scans the first
/// CommonAncestorCount(s, t) entries of both labels. Returns kInfDistance
/// if unreachable. Pure function of (h, labels): stateless and safe to
/// call from concurrent readers on an immutable snapshot.
Weight QueryDistance(const TreeHierarchy& h, const Labelling& labels,
                     Vertex s, Vertex t);

/// Reconstructs an actual shortest path s .. t (inclusive endpoints):
/// picks the tight hub r of Equation 3 and unpacks both sides by greedy
/// descent along label-consistent arcs inside G[Desc(r)]. Returns an
/// empty vector iff t is unreachable from s. O(|path| * max degree).
std::vector<Vertex> QueryPath(const Graph& g, const TreeHierarchy& h,
                              const Labelling& labels, Vertex s, Vertex t);

/// Recomputes the label column of a single ancestor position from scratch
/// (restricted Dijkstra). Used by tests and by index repair tooling.
void RebuildColumn(const Graph& g, const TreeHierarchy& h, Vertex r,
                   Labelling* labels);

}  // namespace stl

#endif  // STL_CORE_LABELLING_H_
