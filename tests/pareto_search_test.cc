#include "core/pareto_search.h"

#include <gtest/gtest.h>

#include "core/label_search.h"
#include "graph/dijkstra.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace stl {
namespace {

using testing_util::LabelDiffCount;
using testing_util::RandomUpdate;

struct Fixture {
  Graph g;
  TreeHierarchy h;
  Labelling labels;
  ParetoSearch engine;

  explicit Fixture(Graph graph, uint64_t seed = 1)
      : g(std::move(graph)),
        h(TreeHierarchy::Build(g, MakeOpt(seed))),
        labels(BuildLabelling(g, h)),
        engine(&g, h, &labels) {}

  static HierarchyOptions MakeOpt(uint64_t seed) {
    HierarchyOptions opt;
    opt.seed = seed;
    return opt;
  }

  Labelling Rebuilt() const { return BuildLabelling(g, h); }
};

TEST(ParetoSearchTest, SingleDecreaseMatchesRebuild) {
  Fixture f(testing_util::SmallRoadNetwork(10, 1));
  EdgeId e = 11 % f.g.NumEdges();
  Weight w = f.g.EdgeWeight(e);
  ASSERT_GT(w, 1u);
  f.engine.ApplyDecrease(e, 1);
  EXPECT_EQ(f.g.EdgeWeight(e), 1u);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
}

TEST(ParetoSearchTest, SingleIncreaseMatchesRebuild) {
  Fixture f(testing_util::SmallRoadNetwork(10, 2));
  EdgeId e = 29 % f.g.NumEdges();
  Weight w = f.g.EdgeWeight(e);
  f.engine.ApplyIncrease(e, w * 6);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
}

TEST(ParetoSearchTest, SmallIncreaseUsesTightBumps) {
  // A +1 increase: most affected labels should be settled by the
  // upper-bound bump alone (the effect Figure 8 measures).
  Fixture f(testing_util::SmallRoadNetwork(10, 3));
  EdgeId e = 7 % f.g.NumEdges();
  Weight w = f.g.EdgeWeight(e);
  f.engine.ApplyIncrease(e, w + 1);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
}

TEST(ParetoSearchTest, IncreaseThenRestore) {
  Fixture f(testing_util::SmallRoadNetwork(10, 4));
  Labelling original = f.labels;
  EdgeId e = 13 % f.g.NumEdges();
  Weight w = f.g.EdgeWeight(e);
  f.engine.ApplyIncrease(e, w * 2);
  f.engine.ApplyDecrease(e, w);
  EXPECT_EQ(LabelDiffCount(f.labels, original), 0u);
}

TEST(ParetoSearchTest, TiedShortestPathsThroughBothEndpoints) {
  // Diamond with equal-length sides plus the updated chord: shortest
  // paths tie through both endpoints of the update, exercising the
  // second-search bump guard (DESIGN.md deviation note).
  //      1
  //    .' '.
  //   0     3 --- 4
  //    '. .'
  //      2
  Graph g = testing_util::MakeGraph(
      5, {{0, 1, 2}, {0, 2, 2}, {1, 3, 2}, {2, 3, 2}, {3, 4, 3}, {0, 4, 10}});
  Fixture f(std::move(g));
  auto chord = f.g.FindEdge(0, 4);
  ASSERT_TRUE(chord.has_value());
  // Increase the chord: paths 0-1-3-4 and 0-2-3-4 tie at 7 < 10 already;
  // then decrease to 4 making the chord optimal again.
  f.engine.ApplyIncrease(*chord, 12);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
  f.engine.ApplyDecrease(*chord, 4);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
  // Equal-weight everything: increase an inner tied edge.
  auto inner = f.g.FindEdge(1, 3);
  ASSERT_TRUE(inner.has_value());
  f.engine.ApplyIncrease(*inner, 9);
  EXPECT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u);
}

TEST(ParetoSearchTest, UniformWeightsManyTies) {
  // Uniform weights maximize tie density; run a storm of updates.
  RoadNetworkOptions opt;
  opt.width = 9;
  opt.height = 9;
  opt.local_min_weight = 10;
  opt.local_max_weight = 10;
  opt.arterial_every = 0;
  opt.highway_every = 0;
  opt.seed = 5;
  Fixture f(GenerateRoadNetwork(opt));
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    WeightUpdate u = RandomUpdate(f.g, &rng);
    f.engine.ApplyBatch({u});
    ASSERT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u) << round;
  }
}

TEST(ParetoSearchTest, AgreesWithLabelSearch) {
  // Two engines over two identical copies must produce identical labels.
  Graph g1 = testing_util::SmallRoadNetwork(10, 6);
  Graph g2 = g1;
  Fixture fp(std::move(g1), 6);
  Graph* g2p = &g2;
  TreeHierarchy h2 = TreeHierarchy::Build(*g2p, Fixture::MakeOpt(6));
  Labelling l2 = BuildLabelling(*g2p, h2);
  LabelSearch ls(g2p, h2, &l2);
  Rng rng(6);
  for (int round = 0; round < 15; ++round) {
    WeightUpdate u = RandomUpdate(fp.g, &rng);
    fp.engine.ApplyBatch({u});
    ls.ApplyBatch({u});
    ASSERT_EQ(LabelDiffCount(fp.labels, l2), 0u) << round;
  }
}

TEST(ParetoSearchDeathTest, WrongDirectionRejected) {
  Fixture f(testing_util::SmallRoadNetwork(6, 7));
  Weight w = f.g.EdgeWeight(0);
  EXPECT_DEATH(f.engine.ApplyDecrease(0, w + 1), "not a decrease");
  EXPECT_DEATH(f.engine.ApplyIncrease(0, w == 1 ? 1 : w - 1),
               "not an increase");
}

TEST(ParetoSearchTest, BatchSkipsNoOps) {
  Fixture f(testing_util::SmallRoadNetwork(6, 8));
  Labelling before = f.labels;
  Weight w = f.g.EdgeWeight(0);
  f.engine.ApplyBatch({WeightUpdate{0, w, w}});
  EXPECT_EQ(LabelDiffCount(f.labels, before), 0u);
}

TEST(ParetoSearchTest, StatsAccumulate) {
  Fixture f(testing_util::SmallRoadNetwork(10, 9));
  EdgeId e = 3 % f.g.NumEdges();
  f.engine.ApplyIncrease(e, f.g.EdgeWeight(e) * 4);
  EXPECT_GT(f.engine.stats().queue_pops, 0u);
}

TEST(ParetoSearchTest, QueriesStayCorrectUnderUpdates) {
  Fixture f(testing_util::SmallRoadNetwork(11, 10));
  Rng rng(10);
  for (int round = 0; round < 8; ++round) {
    WeightUpdate u = RandomUpdate(f.g, &rng);
    f.engine.ApplyBatch({u});
    Dijkstra dij(f.g);
    for (int i = 0; i < 60; ++i) {
      Vertex s = static_cast<Vertex>(rng.NextBounded(f.g.NumVertices()));
      Vertex t = static_cast<Vertex>(rng.NextBounded(f.g.NumVertices()));
      ASSERT_EQ(QueryDistance(f.h, f.labels, s, t), dij.Distance(s, t))
          << "round " << round;
    }
  }
}

class ParetoRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParetoRandomized, LongUpdateSequenceMatchesRebuild) {
  const uint64_t seed = GetParam();
  Fixture f(testing_util::SmallRoadNetwork(9, seed), seed);
  Rng rng(seed * 31 + 7);
  for (int round = 0; round < 25; ++round) {
    WeightUpdate u = RandomUpdate(f.g, &rng);
    f.engine.ApplyBatch({u});
    ASSERT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u)
        << "seed " << seed << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ParetoSearchTest, WorksOnRandomTopology) {
  Graph g = GenerateRandomConnectedGraph(120, 100, 1, 30, 77);
  Fixture f(std::move(g), 77);
  Rng rng(78);
  for (int round = 0; round < 15; ++round) {
    WeightUpdate u = RandomUpdate(f.g, &rng);
    f.engine.ApplyBatch({u});
    ASSERT_EQ(LabelDiffCount(f.labels, f.Rebuilt()), 0u) << round;
  }
}

}  // namespace
}  // namespace stl
